package shard

import (
	"sync/atomic"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

func benchSharded(b *testing.B, mode LockMode, readPct int) {
	recs := sortedRecs(100_000, 1)
	s, err := New(recs, Config{Shards: 8, Mode: mode, DeltaCap: 4096}, testBuilders())
	if err != nil {
		b.Fatal(err)
	}
	var ctr atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		seed := ctr.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			seed = seed*6364136223846793005 + 1442695040888963407
			k := recs[int(seed>>33)%len(recs)].Key
			if int(seed%100) < readPct {
				s.Get(k)
			} else {
				s.Insert(k, core.Value(seed))
			}
		}
	})
}

func BenchmarkShardedRW95(b *testing.B)  { benchSharded(b, LockRW, 95) }
func BenchmarkShardedRCU95(b *testing.B) { benchSharded(b, LockRCU, 95) }
func BenchmarkShardedRW50(b *testing.B)  { benchSharded(b, LockRW, 50) }
func BenchmarkShardedRCU50(b *testing.B) { benchSharded(b, LockRCU, 50) }

func BenchmarkLookupBatch(b *testing.B) {
	recs := sortedRecs(100_000, 1)
	s, err := New(recs, Config{Shards: 8}, testBuilders())
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]core.Key, 256)
	for i := range keys {
		keys[i] = recs[i*97%len(recs)].Key
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LookupBatch(keys)
	}
}

func BenchmarkRouterRoute(b *testing.B) {
	r := UniformRouter(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Route(core.Key(i) * 0x9e3779b97f4a7c15)
	}
}

// BenchmarkLookupBatchVsLooped pins the batch-vs-looped comparison the
// bench regression gate enforces: Into is the zero-alloc path, looped is
// the per-key Get baseline.
func BenchmarkLookupBatchInto(b *testing.B) {
	recs := sortedRecs(100_000, 1)
	s, err := New(recs, Config{Shards: 8}, testBuilders())
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]core.Key, 256)
	for i := range keys {
		keys[i] = recs[i*97%len(recs)].Key
	}
	vals := make([]core.Value, len(keys))
	oks := make([]bool, len(keys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LookupBatchInto(keys, vals, oks)
	}
}

func BenchmarkLookupLooped(b *testing.B) {
	recs := sortedRecs(100_000, 1)
	s, err := New(recs, Config{Shards: 8}, testBuilders())
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]core.Key, 256)
	for i := range keys {
		keys[i] = recs[i*97%len(recs)].Key
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			s.Get(k)
		}
	}
}
