package shard

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Epoch-based reclamation for the RCU read path.
//
// LockRCU readers never take a lock: they pin the current epoch, load the
// snapshot/delta pointers, read, and unpin. Writers retire superseded
// buffers (snapshot record arrays, delta sorted runs, delta tails) into a
// limbo list stamped with the epoch current at retirement, then advance
// the global epoch. A retired buffer is reclaimed — recycled into the
// owning Sharded's buffer pools — only once every pinned reader holds an
// epoch newer than the retirement stamp, which proves no reader loaded a
// pointer to it:
//
//   - a reader pinned before the buffer was unpublished carries a pin
//     epoch ≤ the retirement stamp, so the stamp never drops below the
//     minimum pinned epoch and the buffer stays in limbo;
//   - a reader pinned after the unpublish can only load the replacement
//     pointer (Go's sync/atomic is sequentially consistent), so it never
//     reaches the retired buffer at all.
//
// Pin/unpin are two atomic operations and a short probe — no mutex, no
// allocation — so the read path stays lock-free and zero-alloc (pinned by
// internal/shard/alloc_test.go).

// epochSlots is the pin-slot count. More concurrent pinned readers than
// slots simply spin in pin() until a slot frees; 64 comfortably exceeds
// any realistic worker count.
const epochSlots = 64

// epochSlot is one pin slot, padded to a cache line so readers on
// different cores do not false-share. 0 means idle; a nonzero value is
// the pinned epoch + 1.
type epochSlot struct {
	e atomic.Uint64
	_ [56]byte
}

// retired is one limbo entry: a reclamation closure and the global epoch
// at retirement time.
type retired struct {
	epoch uint64
	free  func()
}

// epochDomain is one reclamation domain, shared by all shards of a
// Sharded (a single pin covers a whole cross-shard batch).
type epochDomain struct {
	global atomic.Uint64
	slots  [epochSlots]epochSlot

	mu       sync.Mutex // guards limbo; never touched by readers
	limbo    []retired
	reclaims atomic.Uint64 // buffers actually freed, for tests/stats
}

// pin claims a slot holding the current epoch and returns it. The probe
// starts at a slot derived from the caller's stack address, so distinct
// goroutines land on distinct cache lines and repeated pins by one
// goroutine reuse a warm slot.
func (d *epochDomain) pin() *epochSlot {
	var anchor byte
	h := uint(uintptr(unsafe.Pointer(&anchor)) >> 6)
	for {
		e := d.global.Load()
		for i := uint(0); i < epochSlots; i++ {
			s := &d.slots[(h+i)%epochSlots]
			if s.e.Load() == 0 && s.e.CompareAndSwap(0, e+1) {
				return s
			}
		}
		// Every slot is held by a concurrent reader; retry with a fresh
		// epoch so a long spin cannot pin an ancient value.
	}
}

// unpin releases a slot returned by pin. All reads of epoch-protected
// buffers must happen before unpin.
func (d *epochDomain) unpin(s *epochSlot) { s.e.Store(0) }

// retire schedules free to run once every reader pinned at or before the
// current epoch has unpinned, then advances the epoch and opportunistically
// reclaims whatever is already safe.
func (d *epochDomain) retire(free func()) {
	d.mu.Lock()
	d.limbo = append(d.limbo, retired{epoch: d.global.Load(), free: free})
	d.global.Add(1)
	d.collectLocked()
	d.mu.Unlock()
}

// collect reclaims every limbo entry no pinned reader can still reference.
func (d *epochDomain) collect() {
	d.mu.Lock()
	d.collectLocked()
	d.mu.Unlock()
}

func (d *epochDomain) collectLocked() {
	min := d.global.Load()
	for i := range d.slots {
		if e := d.slots[i].e.Load(); e != 0 && e-1 < min {
			min = e - 1
		}
	}
	kept := d.limbo[:0]
	for _, r := range d.limbo {
		if r.epoch < min {
			r.free()
			d.reclaims.Add(1)
		} else {
			kept = append(kept, r)
		}
	}
	// Zero the tail so reclaimed closures are not retained by the
	// backing array.
	for i := len(kept); i < len(d.limbo); i++ {
		d.limbo[i] = retired{}
	}
	d.limbo = kept
}

// pending returns the limbo length, for tests.
func (d *epochDomain) pending() int {
	d.mu.Lock()
	n := len(d.limbo)
	d.mu.Unlock()
	return n
}
