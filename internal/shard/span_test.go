package shard

import (
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/trace"
)

// TestShardedSpanMethods pins the span-aware batch capabilities on the
// shard layer: the whole cross-shard fan-out lands in the shard stage,
// nil spans fall through to the plain batch path, and results are
// identical either way.
func TestShardedSpanMethods(t *testing.T) {
	s, err := New(nil, Config{Shards: 4}, testBuilders())
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Config{SampleRate: 1, Metrics: obs.NewMetrics("shard-span")})

	recs := make([]core.KV, 64)
	keys := make([]core.Key, 64)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(i * 3), Value: core.Value(i)}
		keys[i] = core.Key(i * 3)
	}

	sp := tr.Start(len(recs))
	s.InsertBatchSpan(recs, sp)
	if sp.Stage(trace.StageShard) <= 0 {
		t.Errorf("insert shard stage = %v, want > 0", sp.Stage(trace.StageShard))
	}
	if got := sp.Stage(trace.StageWAL); got != 0 {
		t.Errorf("insert wal stage = %v, want 0 (no durable layer)", got)
	}
	tr.Finish(sp)

	sp = tr.Start(len(keys))
	vals, oks := s.LookupBatchSpan(keys, sp)
	for i := range keys {
		if !oks[i] || vals[i] != core.Value(i) {
			t.Fatalf("lookup %d = (%d,%v)", i, vals[i], oks[i])
		}
	}
	if sp.Stage(trace.StageShard) <= 0 {
		t.Errorf("lookup shard stage = %v, want > 0", sp.Stage(trace.StageShard))
	}
	tr.Finish(sp)

	sp = tr.Start(len(keys))
	delOks := s.DeleteBatchSpan(keys, sp)
	for i, ok := range delOks {
		if !ok {
			t.Fatalf("delete %d missed", i)
		}
	}
	if sp.Stage(trace.StageShard) <= 0 {
		t.Errorf("delete shard stage = %v, want > 0", sp.Stage(trace.StageShard))
	}
	tr.Finish(sp)
	if s.Len() != 0 {
		t.Fatalf("Len after span deletes = %d, want 0", s.Len())
	}

	// Nil spans: plain passthrough on all three.
	s.InsertBatchSpan(recs[:4], nil)
	if vals, oks := s.LookupBatchSpan(keys[:4], nil); !oks[0] || vals[0] != 0 {
		t.Error("nil-span lookup broken")
	}
	if oks := s.DeleteBatchSpan(keys[:4], nil); !oks[3] {
		t.Error("nil-span delete broken")
	}
}
