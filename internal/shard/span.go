package shard

import (
	"time"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/trace"
)

// Span-aware batch capabilities: when a Sharded is the top of the store
// stack (no durable layer above it), the serving tracer routes sampled
// batches here so the whole cross-shard fan-out is attributed to the
// shard stage. The durable layer does NOT forward spans down to this
// level — it times its in-memory apply itself — so shard time is never
// double-counted.

// LookupBatchSpan times the cross-shard batched lookup into sp's shard
// stage.
func (s *Sharded) LookupBatchSpan(keys []core.Key, sp *trace.Span) ([]core.Value, []bool) {
	if sp == nil {
		return s.LookupBatch(keys)
	}
	t0 := time.Now()
	vals, oks := s.LookupBatch(keys)
	sp.Add(trace.StageShard, time.Since(t0))
	return vals, oks
}

// InsertBatchSpan times the cross-shard batched insert into sp's shard
// stage.
func (s *Sharded) InsertBatchSpan(recs []core.KV, sp *trace.Span) {
	if sp == nil {
		s.InsertBatch(recs)
		return
	}
	t0 := time.Now()
	s.InsertBatch(recs)
	sp.Add(trace.StageShard, time.Since(t0))
}

// DeleteBatchSpan times the cross-shard batched delete into sp's shard
// stage.
func (s *Sharded) DeleteBatchSpan(keys []core.Key, sp *trace.Span) []bool {
	if sp == nil {
		return s.DeleteBatch(keys)
	}
	t0 := time.Now()
	oks := s.DeleteBatch(keys)
	sp.Add(trace.StageShard, time.Since(t0))
	return oks
}
