package shard

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/lix-go/lix/internal/btree"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/pgm"
)

// testBuilders wires the shard layer to a B+-tree backend (RW) and a PGM
// snapshot (RCU) without importing the façade (which imports this
// package's consumers).
func testBuilders() Builders {
	return Builders{
		New: func() (MutableIndex, error) { return btreeIx{btree.New(0)}, nil },
		Bulk: func(recs []core.KV) (MutableIndex, error) {
			t, err := btree.Bulk(btree.DefaultOrder, recs)
			if err != nil {
				return nil, err
			}
			return btreeIx{t}, nil
		},
		Static: func(recs []core.KV) (Index, error) { return pgm.Build(recs, 0) },
	}
}

type btreeIx struct{ *btree.Tree }

func (b btreeIx) Insert(k core.Key, v core.Value) { b.Tree.Insert(k, v) }

func sortedRecs(n int, seed int64) []core.KV {
	r := rand.New(rand.NewSource(seed))
	seen := make(map[core.Key]bool, n)
	recs := make([]core.KV, 0, n)
	for len(recs) < n {
		k := core.Key(r.Uint64())
		if seen[k] {
			continue
		}
		seen[k] = true
		recs = append(recs, core.KV{Key: k, Value: core.Value(k ^ 0xabcd)})
	}
	sort.Sort(core.KVSlice(recs))
	return recs
}

func modes(t *testing.T, shards, deltaCap int, fn func(t *testing.T, s *Sharded)) {
	t.Helper()
	for _, mode := range []LockMode{LockRW, LockRCU} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			s, err := New(nil, Config{Shards: shards, Mode: mode, DeltaCap: deltaCap}, testBuilders())
			if err != nil {
				t.Fatal(err)
			}
			fn(t, s)
		})
	}
}

func TestRouterPartitionIsTotal(t *testing.T) {
	recs := sortedRecs(1000, 1)
	for _, n := range []int{1, 2, 3, 8, 16, 1500} {
		r := QuantileRouter(recs, n)
		if r.Shards() != max(n, 1) {
			t.Fatalf("Shards() = %d, want %d", r.Shards(), n)
		}
		parts := r.Partition(recs)
		total := 0
		for i, p := range parts {
			total += len(p)
			for _, rec := range p {
				if got := r.Route(rec.Key); got != i {
					t.Fatalf("n=%d: key %d partitioned to shard %d but routes to %d", n, rec.Key, i, got)
				}
			}
		}
		if total != len(recs) {
			t.Fatalf("n=%d: partition dropped records: %d of %d", n, total, len(recs))
		}
	}
}

func TestRouterOwnsMatchesRoute(t *testing.T) {
	routers := []Router{
		{},
		UniformRouter(4),
		NewRouter([]core.Key{0, 0, 100, 100, math.MaxUint64}),
		QuantileRouter(sortedRecs(100, 2), 8),
	}
	for ri, r := range routers {
		for i := 0; i < r.Shards(); i++ {
			lo, hi, ok := r.Owns(i)
			if !ok {
				continue
			}
			for _, k := range []core.Key{lo, hi} {
				if got := r.Route(k); got != i {
					t.Fatalf("router %d: Owns(%d)=[%d,%d] but Route(%d)=%d", ri, i, lo, hi, k, got)
				}
			}
		}
	}
}

// TestShardedDifferential replays a mixed sequential workload against both
// lock modes and a map oracle, crossing shard boundaries and the key-space
// extremes.
func TestShardedDifferential(t *testing.T) {
	recs := sortedRecs(2000, 3)
	for _, mode := range []LockMode{LockRW, LockRCU} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			s, err := New(recs, Config{Shards: 8, Mode: mode, DeltaCap: 64}, testBuilders())
			if err != nil {
				t.Fatal(err)
			}
			oracle := make(map[core.Key]core.Value, len(recs))
			for _, r := range recs {
				oracle[r.Key] = r.Value
			}
			r := rand.New(rand.NewSource(7))
			keys := make([]core.Key, 0, len(oracle))
			for k := range oracle {
				keys = append(keys, k)
			}
			pick := func() core.Key {
				if r.Intn(8) == 0 {
					return []core.Key{0, 1, math.MaxUint64 - 1, math.MaxUint64}[r.Intn(4)]
				}
				return keys[r.Intn(len(keys))]
			}
			for op := 0; op < 8000; op++ {
				switch r.Intn(10) {
				case 0, 1:
					k, v := pick(), core.Value(r.Uint64())
					s.Insert(k, v)
					oracle[k] = v
				case 2:
					k := pick()
					_, want := oracle[k]
					if got := s.Delete(k); got != want {
						t.Fatalf("Delete(%d) = %v, oracle %v", k, got, want)
					}
					delete(oracle, k)
				case 3, 4, 5, 6:
					k := pick()
					gv, gok := s.Get(k)
					wv, wok := oracle[k]
					if gok != wok || (gok && gv != wv) {
						t.Fatalf("Get(%d) = (%d, %v), oracle (%d, %v)", k, gv, gok, wv, wok)
					}
				case 7:
					if g, w := s.Len(), len(oracle); g != w {
						t.Fatalf("Len() = %d, oracle %d", g, w)
					}
				default:
					lo := pick()
					hi := lo + core.Key(r.Intn(1<<30))
					if hi < lo {
						hi = math.MaxUint64
					}
					got := s.SearchRange(lo, hi)
					if got == nil {
						t.Fatalf("SearchRange returned nil")
					}
					var want []core.KV
					for k, v := range oracle {
						if k >= lo && k <= hi {
							want = append(want, core.KV{Key: k, Value: v})
						}
					}
					sort.Sort(core.KVSlice(want))
					if len(got) != len(want) {
						t.Fatalf("SearchRange(%d,%d) yielded %d records, oracle %d", lo, hi, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("SearchRange(%d,%d) record %d = %v, oracle %v", lo, hi, i, got[i], want[i])
						}
					}
				}
			}
			if mode == LockRCU && s.RCUSwaps() == 0 {
				t.Fatal("workload never triggered an RCU snapshot swap")
			}
		})
	}
}

func TestShardedRangeEarlyStop(t *testing.T) {
	recs := sortedRecs(512, 5)
	modes(t, 4, 16, func(t *testing.T, s *Sharded) {
		for _, r := range recs {
			s.Insert(r.Key, r.Value)
		}
		for _, stop := range []int{1, 3, 100} {
			var got []core.Key
			n := s.Range(0, math.MaxUint64, func(k core.Key, v core.Value) bool {
				got = append(got, k)
				return len(got) < stop
			})
			if n != stop || len(got) != stop {
				t.Fatalf("stop=%d: visited %d records, fn saw %d", stop, n, len(got))
			}
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("range not ascending at %d", i)
				}
			}
			if got[0] != recs[0].Key {
				t.Fatalf("range started at %d, want %d", got[0], recs[0].Key)
			}
		}
	})
}

func TestBatchedOps(t *testing.T) {
	recs := sortedRecs(1024, 9)
	modes(t, 8, 32, func(t *testing.T, s *Sharded) {
		s.InsertBatch(recs)
		if g, w := s.Len(), len(recs); g != w {
			t.Fatalf("Len after InsertBatch = %d, want %d", g, w)
		}
		keys := make([]core.Key, 0, 2*len(recs))
		for _, r := range recs {
			keys = append(keys, r.Key, r.Key+1) // hit, (almost surely) miss
		}
		vals, oks := s.LookupBatch(keys)
		if len(vals) != len(keys) || len(oks) != len(keys) {
			t.Fatalf("LookupBatch shape: %d vals, %d oks, want %d", len(vals), len(oks), len(keys))
		}
		for i, r := range recs {
			if !oks[2*i] || vals[2*i] != r.Value {
				t.Fatalf("LookupBatch[%d] = (%d, %v), want (%d, true)", 2*i, vals[2*i], oks[2*i], r.Value)
			}
		}
		// A batch with duplicate keys: the later record wins, as with a
		// sequential upsert loop.
		dup := []core.KV{{Key: 42, Value: 1}, {Key: 42, Value: 2}, {Key: 42, Value: 3}}
		s.InsertBatch(dup)
		if v, ok := s.Get(42); !ok || v != 3 {
			t.Fatalf("Get(42) = (%d, %v) after duplicate batch, want (3, true)", v, ok)
		}
	})
}

// TestInsertBatchDuplicateKeysLastWins is the regression test for the bug
// the conform stress tier found and shrank: the RCU batch path deduped
// equal keys after an UNSTABLE sort, so with enough records in the batch
// the first of two equal-key upserts could win. A large batch with many
// interleaved duplicates forces the instability.
func TestInsertBatchDuplicateKeysLastWins(t *testing.T) {
	modes(t, 4, 1<<20, func(t *testing.T, s *Sharded) {
		const keys, rounds = 64, 8
		batch := make([]core.KV, 0, keys*rounds)
		for round := 0; round < rounds; round++ {
			for k := 0; k < keys; k++ {
				batch = append(batch, core.KV{Key: core.Key(k) * 7919, Value: core.Value(round*keys + k)})
			}
		}
		s.InsertBatch(batch)
		for k := 0; k < keys; k++ {
			want := core.Value((rounds-1)*keys + k)
			if v, ok := s.Get(core.Key(k) * 7919); !ok || v != want {
				t.Fatalf("Get(%d) = (%d, %v), want (%d, true)", k*7919, v, ok, want)
			}
		}
	})
}

func TestSearchRangeEmptyIsNonNil(t *testing.T) {
	modes(t, 4, 8, func(t *testing.T, s *Sharded) {
		for _, q := range [][2]core.Key{{0, math.MaxUint64}, {5, 10}, {10, 5}} {
			got := s.SearchRange(q[0], q[1])
			if got == nil || len(got) != 0 {
				t.Fatalf("SearchRange(%d,%d) on empty index = %#v, want empty non-nil", q[0], q[1], got)
			}
		}
		// An empty middle shard must not poison a spanning scan either.
		s.Insert(0, 1)
		s.Insert(math.MaxUint64, 2)
		got := s.SearchRange(0, math.MaxUint64)
		if len(got) != 2 || got[0].Key != 0 || got[1].Key != math.MaxUint64 {
			t.Fatalf("spanning SearchRange = %v", got)
		}
	})
}

func TestParallelBulkBuildMatchesSequentialState(t *testing.T) {
	recs := sortedRecs(4096, 11)
	for _, mode := range []LockMode{LockRW, LockRCU} {
		s, err := New(recs, Config{Shards: 7, Mode: mode}, testBuilders())
		if err != nil {
			t.Fatal(err)
		}
		if g, w := s.Len(), len(recs); g != w {
			t.Fatalf("%v: Len = %d, want %d", mode, g, w)
		}
		for i := 0; i < len(recs); i += 64 {
			r := recs[i]
			if v, ok := s.Get(r.Key); !ok || v != r.Value {
				t.Fatalf("%v: Get(%d) = (%d, %v), want (%d, true)", mode, r.Key, v, ok, r.Value)
			}
		}
		got := s.SearchRange(0, math.MaxUint64)
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("%v: full scan record %d = %v, want %v", mode, i, got[i], recs[i])
			}
		}
		if imb := s.Imbalance(); imb < 1 || imb > 1.5 {
			t.Fatalf("%v: quantile-built imbalance = %g, want ~1", mode, imb)
		}
	}
}

func TestObserverSeesRCUSwaps(t *testing.T) {
	m := obs.NewMetrics("test")
	s, err := New(nil, Config{Shards: 2, Mode: LockRCU, DeltaCap: 8, MetricsPrefix: "t"}, testBuilders())
	if err != nil {
		t.Fatal(err)
	}
	s.SetObserver(m)
	for i := 0; i < 100; i++ {
		s.Insert(core.Key(i)*7919, core.Value(i))
	}
	if m.Events.Count(obs.EvRCUSwap) == 0 {
		t.Fatal("observer saw no RCU swap events")
	}
	perShard := s.ShardMetrics()
	if len(perShard) != 2 {
		t.Fatalf("ShardMetrics returned %d bundles, want 2", len(perShard))
	}
	var inserts uint64
	for _, pm := range perShard {
		inserts += pm.Inserts.Load()
	}
	if inserts != 100 {
		t.Fatalf("per-shard insert counters sum to %d, want 100", inserts)
	}
}

func TestShardedStatsAggregates(t *testing.T) {
	recs := sortedRecs(1000, 13)
	modes(t, 4, 0, func(t *testing.T, s *Sharded) {
		s.InsertBatch(recs)
		st := s.Stats()
		if st.Count != len(recs) {
			t.Fatalf("Stats.Count = %d, want %d", st.Count, len(recs))
		}
		if st.Name == "" {
			t.Fatal("Stats.Name empty")
		}
	})
}

// TestConcurrentSmoke hammers a Sharded with mixed concurrent traffic; its
// assertions are weak (values belong to their keys), the point is running
// the whole surface under -race. The conform stress tier does the strong
// differential checking.
func TestConcurrentSmoke(t *testing.T) {
	workers := 8
	opsEach := 2000
	if testing.Short() {
		opsEach = 400
	}
	modes(t, 4, 32, func(t *testing.T, s *Sharded) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < opsEach; i++ {
					k := core.Key(r.Intn(4096)) * 1_000_003
					switch r.Intn(6) {
					case 0:
						s.Insert(k, core.Value(k))
					case 1:
						s.Delete(k)
					case 2:
						s.InsertBatch([]core.KV{{Key: k, Value: core.Value(k)}, {Key: k + 1_000_003, Value: core.Value(k + 1_000_003)}})
					case 3:
						if v, ok := s.Get(k); ok && v != core.Value(k) {
							t.Errorf("Get(%d) = %d", k, v)
							return
						}
					case 4:
						vals, oks := s.LookupBatch([]core.Key{k, k + 1})
						if oks[0] && vals[0] != core.Value(k) {
							t.Errorf("LookupBatch(%d) = %d", k, vals[0])
							return
						}
						_ = oks[1]
					default:
						prev := core.Key(0)
						first := true
						s.Range(k, k+100*1_000_003, func(kk core.Key, vv core.Value) bool {
							if !first && kk <= prev {
								t.Errorf("Range not ascending: %d after %d", kk, prev)
								return false
							}
							first, prev = false, kk
							return core.Value(kk) == vv
						})
					}
				}
			}(w)
		}
		wg.Wait()
	})
}
