// Package shard is the concurrent serving layer of the lix library: it
// range-partitions the key space across N shards, each wrapping one
// single-threaded index from the registry, and makes the ensemble safe for
// concurrent use. Two lock modes are supported (§6.5 of the survey frames
// concurrency as the open challenge for learned structures):
//
//   - LockRW: each shard is a mutable index behind a sync.RWMutex. Reads
//     share the lock, writes exclude; cross-shard traffic never contends.
//   - LockRCU: each shard is an immutable read-optimized snapshot (any
//     static learned index) plus a small immutable delta overlay, both
//     behind atomic pointers. Reads are lock-free; writers serialize on a
//     per-shard mutex, publish copy-on-write deltas, and when the delta
//     reaches its cap merge it into a freshly built snapshot and swap the
//     pointer (the XIndex-style two-phase RCU retrain, emitted as an
//     EvRCUSwap event).
//
// The layer also amortizes coordination: bulk build runs one goroutine per
// shard, LookupBatch/InsertBatch group keys by shard so each shard's lock
// is taken once per batch, and SearchRange fans out across the covered
// shards and concatenates the per-shard results in shard order (shards are
// range-partitioned, so concatenation is the ordered merge).
package shard

import (
	"fmt"
	"sort"

	"github.com/lix-go/lix/internal/core"
)

// Router maps keys to shards by range partitioning. bounds holds the N-1
// ascending split keys of an N-shard router: shard i owns the half-open
// key interval [bounds[i-1], bounds[i]) (with implicit bounds of 0 below
// and +inf above), so a key equal to a split key belongs to the shard
// above the split. Duplicate split keys are legal and yield empty shards.
//
// The zero value is a 1-shard router that owns the whole key space.
type Router struct {
	bounds []core.Key
}

// NewRouter returns a router over the given split keys. The slice is
// copied and sorted; duplicates are kept (they produce empty shards).
func NewRouter(splits []core.Key) Router {
	b := append([]core.Key(nil), splits...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return Router{bounds: b}
}

// UniformRouter returns an n-shard router with splits evenly spaced over
// the full uint64 key space. It is the fallback when no records are
// available to sample quantiles from.
func UniformRouter(n int) Router {
	if n <= 1 {
		return Router{}
	}
	step := ^core.Key(0)/core.Key(n) + 1
	bounds := make([]core.Key, n-1)
	for i := range bounds {
		bounds[i] = step * core.Key(i+1)
	}
	return Router{bounds: bounds}
}

// QuantileRouter returns an n-shard router whose splits are the n-quantile
// keys of recs (sorted ascending), so a bulk build over recs yields
// near-equal shard populations. With fewer records than shards the excess
// shards come out empty.
func QuantileRouter(recs []core.KV, n int) Router {
	if n <= 1 || len(recs) == 0 {
		return UniformRouter(n)
	}
	bounds := make([]core.Key, n-1)
	for i := range bounds {
		bounds[i] = recs[(i+1)*len(recs)/n].Key
	}
	return Router{bounds: bounds}
}

// Shards returns the number of shards the router partitions into.
func (r Router) Shards() int { return len(r.bounds) + 1 }

// Route returns the shard owning k. It is total (every key routes), stable
// (pure function of k) and order-preserving (k1 <= k2 implies
// Route(k1) <= Route(k2)); FuzzShardRouter pins all three.
func (r Router) Route(k core.Key) int { return core.UpperBound(r.bounds, k) }

// Owns returns the key interval owned by shard i as an inclusive pair
// [lo, hi]. Empty shards (duplicate splits) report ok=false.
func (r Router) Owns(i int) (lo, hi core.Key, ok bool) {
	if i < 0 || i >= r.Shards() {
		return 0, 0, false
	}
	if i > 0 {
		lo = r.bounds[i-1]
	}
	hi = ^core.Key(0)
	if i < len(r.bounds) {
		if r.bounds[i] == 0 {
			return 0, 0, false // shard below a split at key 0 owns nothing
		}
		hi = r.bounds[i] - 1
	}
	return lo, hi, lo <= hi
}

// Bounds returns a copy of the split keys.
func (r Router) Bounds() []core.Key { return append([]core.Key(nil), r.bounds...) }

// Partition slices recs (sorted ascending by key) into one contiguous
// sub-slice per shard, aliasing recs. Sub-slices of empty shards are
// empty.
func (r Router) Partition(recs []core.KV) [][]core.KV {
	n := r.Shards()
	parts := make([][]core.KV, n)
	start := 0
	for i := 0; i < n-1; i++ {
		end := start + core.LowerBoundKV(recs[start:], r.bounds[i])
		parts[i] = recs[start:end]
		start = end
	}
	parts[n-1] = recs[start:]
	return parts
}

func (r Router) validate() error {
	for i := 1; i < len(r.bounds); i++ {
		if r.bounds[i] < r.bounds[i-1] {
			return fmt.Errorf("shard: router bounds not ascending at %d", i)
		}
	}
	return nil
}
