package shard

import (
	"fmt"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

// The allocation regression tier: the serving read path and the batch
// entry points must not allocate in steady state. AllocsPerRun pins the
// exact budgets so any future "small" allocation on these paths fails a
// test instead of surfacing as a throughput regression months later.
//
// Batch sizes stay below batchParallelMin so the measurements exercise
// the sequential paths deterministically (the parallel fan-out spawns
// goroutines by design and is exercised by the scaling tier instead).

func allocStack(t *testing.T, mode LockMode, metrics bool) *Sharded {
	t.Helper()
	cfg := Config{Shards: 8, Mode: mode, DeltaCap: 1 << 20}
	if metrics {
		cfg.MetricsPrefix = "alloc"
	}
	s, err := New(sortedRecs(4096, 7), cfg, testBuilders())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func batchKeys(s *Sharded, n int) []core.Key {
	// Every 97th preloaded key: spans several shards for n >= 16 so the
	// multi-shard paths (coalesced and grouped) are both exercised.
	recs := s.SearchRange(0, core.Key(1<<63))
	keys := make([]core.Key, n)
	for i := range keys {
		keys[i] = recs[(i*97)%len(recs)].Key
	}
	return keys
}

// TestLookupBatchIntoZeroAlloc pins 0 allocs/op for the batched read
// path at sizes 1/16/256 in both lock modes, on both the small-batch
// coalesced path and (with per-shard metrics attached, which force it)
// the grouped counting-sort path with its pooled scratch.
func TestLookupBatchIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun pins skipped under -race: sync.Pool sheds items at random there")
	}
	for _, mode := range []LockMode{LockRW, LockRCU} {
		for _, metrics := range []bool{false, true} {
			path := "coalesced"
			if metrics {
				path = "grouped"
			}
			t.Run(fmt.Sprintf("%s/%s", mode, path), func(t *testing.T) {
				s := allocStack(t, mode, metrics)
				for _, size := range []int{1, 16, 256} {
					keys := batchKeys(s, size)
					vals := make([]core.Value, size)
					oks := make([]bool, size)
					// Warm the scratch pool outside the measurement.
					s.LookupBatchInto(keys, vals, oks)
					if got := testing.AllocsPerRun(200, func() {
						s.LookupBatchInto(keys, vals, oks)
					}); got != 0 {
						t.Errorf("size %d: %v allocs/op, want 0", size, got)
					}
					for i := range keys {
						if !oks[i] {
							t.Fatalf("size %d: key %d missing", size, keys[i])
						}
					}
				}
			})
		}
	}
}

// TestGetZeroAlloc pins 0 allocs/op for single-key reads: the RW path is
// a lock and a tree walk, the RCU path an epoch pin and a three-layer
// probe — neither may allocate.
func TestGetZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun pins skipped under -race: sync.Pool sheds items at random there")
	}
	for _, mode := range []LockMode{LockRW, LockRCU} {
		t.Run(mode.String(), func(t *testing.T) {
			s := allocStack(t, mode, false)
			keys := batchKeys(s, 256)
			i := 0
			if got := testing.AllocsPerRun(500, func() {
				k := keys[i%len(keys)]
				i++
				if _, ok := s.Get(k); !ok {
					t.Fatalf("key %d missing", k)
				}
			}); got != 0 {
				t.Errorf("%v allocs/op, want 0", got)
			}
		})
	}
}

// TestInsertBatchSteadyStateZeroAlloc pins 0 allocs/op for batched
// upserts of existing keys in RW mode (value overwrite in place: no tree
// growth, no delta append, so the batch plumbing itself is what is
// measured).
func TestInsertBatchSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun pins skipped under -race: sync.Pool sheds items at random there")
	}
	s := allocStack(t, LockRW, false)
	for _, size := range []int{1, 16, 256} {
		keys := batchKeys(s, size)
		recs := make([]core.KV, size)
		for i, k := range keys {
			recs[i] = core.KV{Key: k, Value: core.Value(i)}
		}
		s.InsertBatch(recs)
		if got := testing.AllocsPerRun(200, func() {
			s.InsertBatch(recs)
		}); got != 0 {
			t.Errorf("size %d: %v allocs/op, want 0", size, got)
		}
	}
}

// TestRCUReadZeroAllocDuringMerges pins the RCU read path at 0 allocs
// even while background merges churn snapshots underneath it: epoch
// pin/unpin and the three-layer probe stay allocation-free regardless of
// merge activity.
func TestRCUReadZeroAllocDuringMerges(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun pins skipped under -race: sync.Pool sheds items at random there")
	}
	s, err := New(sortedRecs(4096, 7), Config{Shards: 4, Mode: LockRCU, DeltaCap: 64}, testBuilders())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keys := batchKeys(s, 64)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Insert(keys[i%len(keys)], core.Value(i))
		}
	}()
	i := 0
	got := testing.AllocsPerRun(500, func() {
		k := keys[i%len(keys)]
		i++
		if _, ok := s.Get(k); !ok {
			t.Fatalf("key %d missing", k)
		}
	})
	close(stop)
	<-done
	if got != 0 {
		t.Errorf("%v allocs/op, want 0", got)
	}
}
