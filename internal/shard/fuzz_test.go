package shard

import (
	"encoding/binary"
	"math"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

// FuzzShardRouter proves the key→shard partitioner is total, stable and
// order-preserving: every key routes to exactly one in-range shard, the
// routing is a pure function of the key, Route is monotone in the key, and
// Owns() intervals tile the key space with no key lost or double-owned —
// including boundary keys 0 and MaxUint64 and duplicate split keys.
func FuzzShardRouter(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1}, uint8(4))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(2))
	f.Add([]byte{1, 2, 3}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, extra uint8) {
		// Decode the corpus bytes into split keys, then adversarially add
		// the extremes and a duplicate so every run exercises them.
		var splits []core.Key
		for i := 0; i+8 <= len(raw) && len(splits) < 64; i += 8 {
			splits = append(splits, binary.LittleEndian.Uint64(raw[i:]))
		}
		if extra%2 == 0 {
			splits = append(splits, 0, math.MaxUint64)
		}
		if len(splits) > 0 {
			splits = append(splits, splits[0]) // duplicate boundary
		}
		r := NewRouter(splits)
		n := r.Shards()
		if n != len(splits)+1 {
			t.Fatalf("Shards() = %d with %d splits", n, len(splits))
		}

		probes := []core.Key{0, 1, math.MaxUint64 - 1, math.MaxUint64}
		for _, b := range r.Bounds() {
			probes = append(probes, b)
			if b > 0 {
				probes = append(probes, b-1)
			}
			if b < math.MaxUint64 {
				probes = append(probes, b+1)
			}
		}

		for _, k := range probes {
			si := r.Route(k)
			// Total: every key routes to an in-range shard.
			if si < 0 || si >= n {
				t.Fatalf("Route(%d) = %d, out of [0,%d)", k, si, n)
			}
			// Stable: routing is a pure function of the key.
			if again := r.Route(k); again != si {
				t.Fatalf("Route(%d) unstable: %d then %d", k, si, again)
			}
			// Owned exactly once: the routed shard's interval contains k,
			// and no other shard's interval does.
			owners := 0
			for i := 0; i < n; i++ {
				lo, hi, ok := r.Owns(i)
				if ok && k >= lo && k <= hi {
					owners++
					if i != si {
						t.Fatalf("key %d routes to %d but is owned by %d", k, si, i)
					}
				}
			}
			if owners != 1 {
				t.Fatalf("key %d owned by %d shards", k, owners)
			}
		}

		// Order-preserving across the probe set.
		for _, a := range probes {
			for _, b := range probes {
				if a <= b && r.Route(a) > r.Route(b) {
					t.Fatalf("Route not monotone: Route(%d)=%d > Route(%d)=%d",
						a, r.Route(a), b, r.Route(b))
				}
			}
		}

		// Owns() intervals must tile: consecutive non-empty intervals are
		// adjacent, starting at 0 and ending at MaxUint64.
		expectLo := core.Key(0)
		last := core.Key(0)
		any := false
		for i := 0; i < n; i++ {
			lo, hi, ok := r.Owns(i)
			if !ok {
				continue
			}
			if lo != expectLo {
				t.Fatalf("shard %d starts at %d, want %d (gap or overlap)", i, lo, expectLo)
			}
			if hi < math.MaxUint64 {
				expectLo = hi + 1
			} else {
				expectLo = 0 // sentinel; must be the last non-empty interval
			}
			last = hi
			any = true
		}
		if !any || last != math.MaxUint64 {
			t.Fatalf("intervals do not cover the key space (last hi = %d)", last)
		}
	})
}
