package shard

import (
	"sort"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
)

// The RCU shard keeps two atomically-published immutable values: the
// snapshot (sorted records + a read-optimized index over them) and a small
// sorted delta of copy-on-write records with tombstones. Load order
// matters: readers load the delta FIRST, then the snapshot, while the
// merging writer stores the new snapshot BEFORE clearing the delta. With
// Go's sequentially-consistent atomics a reader that observes the emptied
// delta therefore always observes the merged snapshot; a reader that pairs
// a stale delta with the new snapshot only re-observes records the merge
// already applied, which the delta-wins rule absorbs.

// deltaFind binary-searches d (sorted by key) for k.
func deltaFind(d []deltaRec, k core.Key) (int, bool) {
	i := sort.Search(len(d), func(i int) bool { return d[i].key >= k })
	return i, i < len(d) && d[i].key == k
}

func (sh *rcuShard) get(k core.Key) (core.Value, bool) {
	d := *sh.delta.Load() // before the snapshot load — see package comment
	if i, ok := deltaFind(d, k); ok {
		if d[i].del {
			return 0, false
		}
		return d[i].val, true
	}
	return sh.snap.Load().ix.Get(k)
}

// present reports whether k is live, used by writers (under mu) to
// maintain the size counter and Delete's return value.
func (sh *rcuShard) present(k core.Key) bool {
	_, ok := sh.get(k)
	return ok
}

func (sh *rcuShard) insert(k core.Key, v core.Value) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.applyLocked([]deltaRec{{key: k, val: v}})
}

func (sh *rcuShard) insertBatch(recs []core.KV) {
	if len(recs) == 0 {
		return
	}
	d := make([]deltaRec, len(recs))
	for i, r := range recs {
		d[i] = deltaRec{key: r.Key, val: r.Value}
	}
	// The sort must be stable: equal keys keep their batch order, so the
	// dedup below can keep the later record, as a sequential upsert loop
	// would have it. (A plain sort.Slice here once made the FIRST of two
	// equal-key records win; the conform stress tier shrank that to a
	// two-insert repro.)
	sort.SliceStable(d, func(i, j int) bool { return d[i].key < d[j].key })
	out := d[:0]
	for _, r := range d {
		if len(out) > 0 && out[len(out)-1].key == r.key {
			out[len(out)-1] = r
			continue
		}
		out = append(out, r)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.applyLocked(out)
}

func (sh *rcuShard) delete(k core.Key) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.present(k) {
		return false
	}
	sh.applyLocked([]deltaRec{{key: k, del: true}})
	return true
}

// deleteBatch removes keys in one delta publication. oks[i] reports
// whether keys[i] was live when its turn came: within the batch the first
// occurrence of a duplicated key reports its liveness, later occurrences
// report false — the sequential-loop semantics the conformance suite
// pins.
func (sh *rcuShard) deleteBatch(keys []core.Key) []bool {
	oks := make([]bool, len(keys))
	if len(keys) == 0 {
		return oks
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	seen := make(map[core.Key]bool, len(keys))
	tombs := make([]deltaRec, 0, len(keys))
	for i, k := range keys {
		if seen[k] {
			continue // a second delete of k in this batch reads false
		}
		seen[k] = true
		if sh.present(k) {
			oks[i] = true
			tombs = append(tombs, deltaRec{key: k, del: true})
		}
	}
	if len(tombs) == 0 {
		return oks
	}
	sort.Slice(tombs, func(i, j int) bool { return tombs[i].key < tombs[j].key })
	sh.applyLocked(tombs)
	return oks
}

// applyLocked merges updates (sorted by key, distinct) into a new delta
// and publishes it, then merges into a fresh snapshot if the delta
// overflowed. Caller holds sh.mu.
func (sh *rcuShard) applyLocked(updates []deltaRec) {
	old := *sh.delta.Load()
	merged := make([]deltaRec, 0, len(old)+len(updates))
	i, j := 0, 0
	var sizeDelta int64
	for i < len(old) || j < len(updates) {
		switch {
		case j >= len(updates) || (i < len(old) && old[i].key < updates[j].key):
			merged = append(merged, old[i])
			i++
		case i >= len(old) || updates[j].key < old[i].key:
			u := updates[j]
			// Key not in the old delta: liveness change depends on the
			// snapshot.
			_, inSnap := sh.snap.Load().ix.Get(u.key)
			if u.del {
				if inSnap {
					sizeDelta--
				} else {
					j++
					continue // tombstone for an absent key: drop it
				}
			} else if !inSnap {
				sizeDelta++
			}
			merged = append(merged, u)
			j++
		default: // equal keys: the update wins
			wasLive, isLive := !old[i].del, !updates[j].del
			if wasLive && !isLive {
				sizeDelta--
			} else if !wasLive && isLive {
				sizeDelta++
			}
			merged = append(merged, updates[j])
			i, j = i+1, j+1
		}
	}
	sh.delta.Store(&merged)
	sh.size.Add(sizeDelta)
	if len(merged) >= sh.cap {
		sh.mergeLocked(merged)
	}
}

// mergeLocked folds the delta into the snapshot records, rebuilds the
// read-optimized index, swaps the snapshot pointer and resets the delta —
// the RCU swap. Caller holds sh.mu.
func (sh *rcuShard) mergeLocked(delta []deltaRec) {
	snap := sh.snap.Load()
	merged := make([]core.KV, 0, len(snap.recs)+len(delta))
	i, j := 0, 0
	for i < len(snap.recs) || j < len(delta) {
		switch {
		case j >= len(delta) || (i < len(snap.recs) && snap.recs[i].Key < delta[j].key):
			merged = append(merged, snap.recs[i])
			i++
		case i >= len(snap.recs) || delta[j].key < snap.recs[i].Key:
			if !delta[j].del {
				merged = append(merged, core.KV{Key: delta[j].key, Value: delta[j].val})
			}
			j++
		default:
			if !delta[j].del {
				merged = append(merged, core.KV{Key: delta[j].key, Value: delta[j].val})
			}
			i, j = i+1, j+1
		}
	}
	ix, err := sh.build(merged)
	if err != nil {
		// The snapshot builder accepted these records at bulk-build time;
		// failing mid-serve has no recovery path that preserves reads, so
		// keep serving the old snapshot + delta (correct, just unmerged).
		return
	}
	sh.snap.Store(&snapshot{recs: merged, ix: ix})
	empty := []deltaRec{}
	sh.delta.Store(&empty)
	sh.swaps.Add(1)
	sh.emitSwap(len(merged))
}

func (sh *rcuShard) emitSwap(n int) {
	p := sh.parent
	detail := "shard=" + itoa(sh.id)
	p.hook.Emit(obs.EvRCUSwap, n, detail)
	if p.mets != nil {
		p.mets[sh.id].Event(obs.Event{Type: obs.EvRCUSwap, N: n, Detail: detail})
	}
}

// itoa avoids strconv for this one hot-adjacent call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// rangeScan merge-iterates the snapshot record window and the delta window
// in ascending key order, delta winning on equal keys and tombstones
// skipped.
func (sh *rcuShard) rangeScan(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	d := *sh.delta.Load() // before the snapshot load — see package comment
	snap := sh.snap.Load()
	recs := snap.recs
	i := core.LowerBoundKV(recs, lo)
	j, _ := deltaFind(d, lo)
	count := 0
	for i < len(recs) || j < len(d) {
		snapOK := i < len(recs) && recs[i].Key <= hi
		deltaOK := j < len(d) && d[j].key <= hi
		if !snapOK && !deltaOK {
			break
		}
		var k core.Key
		var v core.Value
		switch {
		case !deltaOK || (snapOK && recs[i].Key < d[j].key):
			k, v = recs[i].Key, recs[i].Value
			i++
		case !snapOK || d[j].key < recs[i].Key:
			if d[j].del {
				j++
				continue
			}
			k, v = d[j].key, d[j].val
			j++
		default: // equal: delta wins
			del := d[j].del
			k, v = d[j].key, d[j].val
			i, j = i+1, j+1
			if del {
				continue
			}
		}
		count++
		if !fn(k, v) {
			break
		}
	}
	return count
}
