package shard

import (
	"sort"
	"sync/atomic"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
)

// The RCU shard keeps three atomically-published immutable layers, read
// in precedence order:
//
//	active delta  →  frozen delta  →  snapshot
//
// A delta is two-level: an immutable sorted run plus a small fixed-size
// append tail whose published length is an atomic. The writer appends
// tail entries in place — write the record, then store the new length —
// so a single insert costs one slot write instead of the
// copy-the-whole-delta-per-publish scheme this replaced (which collapsed
// the 50/50 mixed workload to ~139k ops/s). When the tail fills, the
// writer folds sorted+tail into a fresh sorted run (amortized ~tailCap
// records copied per fold) and publishes a new active delta.
//
// Merges into the snapshot are paced, not per-publish: once the active
// sorted run reaches cap, the writer freezes the active delta (frozen
// must be empty), installs a fresh active, and a background goroutine
// rebuilds the snapshot from snapshot+frozen outside all locks. While
// the merge runs the writer keeps appending to the new active; if the
// active sorted run outgrows bound (default 4×cap) before the merge
// lands, writers block on mergeCond — that is the delta-bound
// backpressure the conform stress tier pins.
//
// Load-order invariant: readers load active FIRST, then frozen, then the
// snapshot, while writers publish in the opposite order (freeze stores
// frozen before emptying active; merge completion stores the new
// snapshot before emptying frozen). With Go's sequentially-consistent
// atomics a reader that observes an emptied layer therefore always
// observes the layer below it already updated; a reader that pairs a
// stale upper layer with a new lower layer only re-observes records the
// fold/merge already applied, which the precedence rule absorbs.
//
// Readers never lock: they pin the parent's epoch domain, read, unpin.
// Superseded buffers are retired through the epoch domain and recycled
// into the parent's pools only after all pinned readers advance
// (epoch.go).

// delta is one published overlay level: an immutable sorted run
// (distinct keys, tombstones marked) plus an append tail. tail entries
// [0, tailLen) are immutable once published; later entries are owned by
// the writer. Within the tail, later entries win; the whole tail wins
// over sorted.
type delta struct {
	sorted  []deltaRec
	tail    []deltaRec
	tailLen atomic.Int64
}

// emptyDelta is the shared always-empty delta all frozen pointers rest
// at between merges. Never mutated.
var emptyDelta delta

func (d *delta) empty() bool {
	return len(d.sorted) == 0 && d.tailLen.Load() == 0
}

// lookup probes one delta level for k. found reports whether the level
// holds an entry for k at all; del marks it a tombstone.
func (d *delta) lookup(k core.Key) (v core.Value, del, found bool) {
	n := int(d.tailLen.Load())
	for i := n - 1; i >= 0; i-- { // newest tail entry wins
		if d.tail[i].key == k {
			return d.tail[i].val, d.tail[i].del, true
		}
	}
	if i, ok := deltaFind(d.sorted, k); ok {
		return d.sorted[i].val, d.sorted[i].del, true
	}
	return 0, false, false
}

// overlay returns the live record count overlaying the snapshot.
func (d *delta) overlay() int {
	return len(d.sorted) + int(d.tailLen.Load())
}

// deltaFind binary-searches d (sorted by key) for k.
func deltaFind(d []deltaRec, k core.Key) (int, bool) {
	i := sort.Search(len(d), func(i int) bool { return d[i].key >= k })
	return i, i < len(d) && d[i].key == k
}

// ---------------------------------------------------------------------------
// Read path (lock-free, zero-alloc; callers pin the epoch domain)
// ---------------------------------------------------------------------------

func (sh *rcuShard) get(k core.Key) (core.Value, bool) {
	slot := sh.parent.epoch.pin()
	v, ok := sh.read(k)
	sh.parent.epoch.unpin(slot)
	return v, ok
}

// read resolves k through active → frozen → snapshot. The caller must
// hold an epoch pin (readers) or sh.mu (writers).
func (sh *rcuShard) read(k core.Key) (core.Value, bool) {
	if v, del, ok := sh.active.Load().lookup(k); ok {
		return v, !del
	}
	if v, del, ok := sh.frozen.Load().lookup(k); ok {
		return v, !del
	}
	return sh.snap.Load().ix.Get(k)
}

// liveLocked reports whether k is live, used by writers (under mu) to
// maintain the size counter and Delete's return value.
func (sh *rcuShard) liveLocked(k core.Key) bool {
	_, ok := sh.read(k)
	return ok
}

// ---------------------------------------------------------------------------
// Write path (serialized per shard on mu; readers never wait on it)
// ---------------------------------------------------------------------------

func (sh *rcuShard) insert(k core.Key, v core.Value) {
	sh.mu.Lock()
	sh.waitRoomLocked()
	if !sh.liveLocked(k) {
		sh.size.Add(1)
	}
	sh.appendLocked(deltaRec{key: k, val: v})
	sh.mu.Unlock()
}

func (sh *rcuShard) delete(k core.Key) bool {
	sh.mu.Lock()
	if !sh.liveLocked(k) {
		sh.mu.Unlock()
		return false
	}
	sh.waitRoomLocked()
	sh.size.Add(-1)
	sh.appendLocked(deltaRec{key: k, del: true})
	sh.mu.Unlock()
	return true
}

// insertGroup upserts recs[i] for each i in idx (nil idx = all of recs),
// in order, under one lock acquisition. Append order makes later
// duplicates win, exactly as a sequential upsert loop would.
func (sh *rcuShard) insertGroup(recs []core.KV, idx []int32) {
	sh.mu.Lock()
	if idx == nil {
		for i := range recs {
			sh.applyInsertLocked(recs[i])
		}
	} else {
		for _, i := range idx {
			sh.applyInsertLocked(recs[i])
		}
	}
	sh.mu.Unlock()
}

func (sh *rcuShard) applyInsertLocked(r core.KV) {
	sh.waitRoomLocked()
	if !sh.liveLocked(r.Key) {
		sh.size.Add(1)
	}
	sh.appendLocked(deltaRec{key: r.Key, val: r.Value})
}

// deleteGroup removes keys[i] for each i in idx (nil idx = all of keys),
// in order, under one lock acquisition. oks[i] reports whether keys[i]
// was live when its turn came: the first occurrence of a duplicated key
// reports its liveness, later occurrences report false — the
// sequential-loop semantics the conformance suite pins.
func (sh *rcuShard) deleteGroup(keys []core.Key, idx []int32, oks []bool) {
	sh.mu.Lock()
	if idx == nil {
		for i, k := range keys {
			oks[i] = sh.applyDeleteLocked(k)
		}
	} else {
		for _, i := range idx {
			oks[i] = sh.applyDeleteLocked(keys[i])
		}
	}
	sh.mu.Unlock()
}

func (sh *rcuShard) applyDeleteLocked(k core.Key) bool {
	if !sh.liveLocked(k) {
		return false
	}
	sh.waitRoomLocked()
	sh.size.Add(-1)
	sh.appendLocked(deltaRec{key: k, del: true})
	return true
}

// waitRoomLocked is the delta-bound backpressure gate: while a background
// merge is in flight and the active sorted run has reached bound, the
// writer blocks until the merge completes. If no merge is running it
// starts one instead of waiting. Guarantees the active overlay never
// exceeds bound+len(tail) records (see DeltaCeiling).
func (sh *rcuShard) waitRoomLocked() {
	for len(sh.active.Load().sorted) >= sh.bound {
		if !sh.merging {
			sh.scheduleLocked()
			continue
		}
		sh.stalls.Add(1)
		sh.mergeCond.Wait()
	}
}

// appendLocked publishes one record into the active tail, folding the
// tail into the sorted run first if it is full. Caller holds sh.mu.
func (sh *rcuShard) appendLocked(r deltaRec) {
	d := sh.active.Load()
	if int(d.tailLen.Load()) == len(d.tail) {
		d = sh.foldLocked()
	}
	n := d.tailLen.Load()
	d.tail[n] = r          // slot write first...
	d.tailLen.Store(n + 1) // ...then publish the length
}

// foldLocked folds the active delta's tail into its sorted run,
// publishes the result as a fresh active delta, retires the old one and
// returns the new current active (scheduleLocked may have frozen the
// fold result and installed an empty active). Caller holds sh.mu.
func (sh *rcuShard) foldLocked() *delta {
	old := sh.active.Load()
	sh.active.Store(sh.foldDelta(old))
	sh.retireDelta(old)
	sh.scheduleLocked()
	return sh.active.Load()
}

// foldDelta merges d.sorted and d.tail (later tail entries winning) into
// a new sorted run backed by pooled buffers. A tombstone survives the
// fold only while it still shadows an entry in the frozen delta or the
// snapshot; otherwise the key is absent everywhere below and the
// tombstone is dropped.
func (sh *rcuShard) foldDelta(d *delta) *delta {
	patchp := sh.parent.getDrec(len(d.tail))
	patch := compactTail(d, *patchp)
	snapIx := sh.snap.Load().ix
	frozen := sh.frozen.Load()

	outp := sh.parent.getDrec(len(d.sorted) + len(patch))
	out := *outp
	keep := func(r deltaRec) bool {
		if !r.del {
			return true
		}
		if _, _, ok := frozen.lookup(r.key); ok {
			return true
		}
		_, ok := snapIx.Get(r.key)
		return ok
	}
	i, j := 0, 0
	for i < len(d.sorted) || j < len(patch) {
		switch {
		case j >= len(patch) || (i < len(d.sorted) && d.sorted[i].key < patch[j].key):
			if keep(d.sorted[i]) {
				out = append(out, d.sorted[i])
			}
			i++
		case i >= len(d.sorted) || patch[j].key < d.sorted[i].key:
			if keep(patch[j]) {
				out = append(out, patch[j])
			}
			j++
		default: // equal keys: the tail patch wins
			if keep(patch[j]) {
				out = append(out, patch[j])
			}
			i, j = i+1, j+1
		}
	}
	*patchp = patch
	sh.parent.putDrec(patchp)
	*outp = out

	nd := &delta{sorted: out, tail: sh.parent.getTail(len(d.tail))}
	// outp's box is dropped; the slice itself is now published in nd and
	// will be re-boxed at retirement.
	return nd
}

// compactTail collapses the published tail of d into a sorted,
// distinct-key patch (later entries winning) appended to out. With the
// tail capped at tailCap the quadratic insertion is a handful of cache
// lines per fold.
func compactTail(d *delta, out []deltaRec) []deltaRec {
	n := int(d.tailLen.Load())
	for i := 0; i < n; i++ {
		r := d.tail[i]
		pos, found := deltaFind(out, r.key)
		if found {
			out[pos] = r
			continue
		}
		out = append(out, deltaRec{})
		copy(out[pos+1:], out[pos:])
		out[pos] = r
	}
	return out
}

// retireDelta hands d's buffers to the epoch domain for recycling once
// all pinned readers advance.
func (sh *rcuShard) retireDelta(d *delta) {
	if d == &emptyDelta {
		return
	}
	s, t, p := d.sorted, d.tail, sh.parent
	sh.parent.epoch.retire(func() {
		if cap(s) > 0 {
			p.putDrec(&s)
		}
		if cap(t) > 0 {
			p.putDrec(&t)
		}
	})
}

// ---------------------------------------------------------------------------
// Paced background merge
// ---------------------------------------------------------------------------

// scheduleLocked starts a background merge when one is due and none is in
// flight: if the frozen slot is free and the active sorted run has
// reached cap, the active delta is frozen (frozen stored FIRST, then a
// fresh active — the reader load order inverted) and a merge goroutine
// is spawned; if a previous merge failed and left the frozen slot
// occupied, the merge is simply re-spawned. Caller holds sh.mu.
func (sh *rcuShard) scheduleLocked() {
	if sh.merging || sh.closed {
		return
	}
	f := sh.frozen.Load()
	if f.empty() {
		a := sh.active.Load()
		if len(a.sorted) < sh.cap {
			return
		}
		sh.frozen.Store(a)
		sh.active.Store(&delta{tail: sh.parent.getTail(len(a.tail))})
	}
	sh.merging = true
	go sh.mergeAsync()
}

// mergeAsync rebuilds the snapshot from snapshot+frozen. The expensive
// work — folding the frozen delta, merging records, rebuilding the
// read-optimized index — runs outside every lock; only the pointer swaps
// at the end take mu. The frozen delta is immutable while a merge is in
// flight (writers only append to active), so reading it unlocked is
// safe, and it stays published until the swap so no epoch pin is needed
// here either.
func (sh *rcuShard) mergeAsync() {
	f := sh.frozen.Load()
	snap := sh.snap.Load()

	// Fold frozen into one sorted overlay. Tombstones are kept: they drop
	// snapshot records during the record merge below.
	patchp := sh.parent.getDrec(len(f.tail))
	patch := compactTail(f, *patchp)
	ovp := sh.parent.getDrec(len(f.sorted) + len(patch))
	ov := *ovp
	i, j := 0, 0
	for i < len(f.sorted) || j < len(patch) {
		switch {
		case j >= len(patch) || (i < len(f.sorted) && f.sorted[i].key < patch[j].key):
			ov = append(ov, f.sorted[i])
			i++
		case i >= len(f.sorted) || patch[j].key < f.sorted[i].key:
			ov = append(ov, patch[j])
			j++
		default:
			ov = append(ov, patch[j])
			i, j = i+1, j+1
		}
	}
	*patchp = patch
	sh.parent.putDrec(patchp)

	mergedp := sh.parent.getRecs(len(snap.recs) + len(ov))
	merged := *mergedp
	i, j = 0, 0
	for i < len(snap.recs) || j < len(ov) {
		switch {
		case j >= len(ov) || (i < len(snap.recs) && snap.recs[i].Key < ov[j].key):
			merged = append(merged, snap.recs[i])
			i++
		case i >= len(snap.recs) || ov[j].key < snap.recs[i].Key:
			if !ov[j].del {
				merged = append(merged, core.KV{Key: ov[j].key, Value: ov[j].val})
			}
			j++
		default:
			if !ov[j].del {
				merged = append(merged, core.KV{Key: ov[j].key, Value: ov[j].val})
			}
			i, j = i+1, j+1
		}
	}
	*ovp = ov
	sh.parent.putDrec(ovp)
	*mergedp = merged

	ix, err := sh.build(merged)

	sh.mu.Lock()
	if err != nil {
		// The snapshot builder accepted these records at bulk-build time;
		// failing mid-serve has no recovery path that preserves reads, so
		// keep serving snapshot+frozen+active (correct, just unmerged).
		// The next write retries via scheduleLocked.
		sh.parent.putRecs(mergedp)
		sh.merging = false
		sh.mergeCond.Broadcast()
		sh.mu.Unlock()
		return
	}
	oldSnap := sh.snap.Load()
	sh.snap.Store(&snapshot{recs: merged, ix: ix, owned: true})
	sh.frozen.Store(&emptyDelta) // snapshot stored FIRST — see package comment
	sh.merging = false
	sh.swaps.Add(1)
	sh.retireDelta(f)
	// The initial snapshot borrows the bulk-build caller's slice
	// (owned=false): it must never be recycled into a write target, so
	// only pool-owned record buffers go through the epoch domain.
	if recs := oldSnap.recs; oldSnap.owned && cap(recs) > 0 {
		p := sh.parent
		p.epoch.retire(func() { p.putRecs(&recs) })
	}
	sh.mergeCond.Broadcast()
	sh.mu.Unlock()
	sh.emitSwap(len(merged))
}

// waitMergesLocked drains the merge pipeline: waits out an in-flight
// merge, then keeps scheduling until neither the frozen slot nor a
// cap-exceeding active sorted run remains. Caller holds sh.mu.
func (sh *rcuShard) waitMergesLocked() {
	for {
		for sh.merging {
			sh.mergeCond.Wait()
		}
		sh.scheduleLocked()
		if !sh.merging {
			return
		}
	}
}

func (sh *rcuShard) emitSwap(n int) {
	p := sh.parent
	detail := "shard=" + itoa(sh.id)
	p.hook.Emit(obs.EvRCUSwap, n, detail)
	if p.mets != nil {
		p.mets[sh.id].Event(obs.Event{Type: obs.EvRCUSwap, N: n, Detail: detail})
	}
}

// itoa avoids strconv for this one hot-adjacent call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ---------------------------------------------------------------------------
// Range scan
// ---------------------------------------------------------------------------

// rangeScan merge-iterates the snapshot window and both delta levels in
// ascending key order under one epoch pin. The two tails are first
// compacted into sorted window patches (pooled scratch), then a fixed
// five-cursor merge emits each key once from its highest-precedence
// source — active patch, active sorted, frozen patch, frozen sorted,
// snapshot — skipping tombstones.
func (sh *rcuShard) rangeScan(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	slot := sh.parent.epoch.pin()
	defer sh.parent.epoch.unpin(slot)
	a := sh.active.Load()
	f := sh.frozen.Load()
	snap := sh.snap.Load()

	pap := sh.parent.getDrec(len(a.tail))
	pa := compactTailWindow(a, lo, hi, *pap)
	pfp := sh.parent.getDrec(len(f.tail))
	pf := compactTailWindow(f, lo, hi, *pfp)

	// Cursor order is precedence order.
	cs := [4][]deltaRec{pa, a.sorted, pf, f.sorted}
	var ci [4]int
	ci[1], _ = deltaFind(a.sorted, lo)
	ci[3], _ = deltaFind(f.sorted, lo)
	recs := snap.recs
	ri := core.LowerBoundKV(recs, lo)

	count := 0
	for {
		var best core.Key
		have := false
		for x := 0; x < 4; x++ {
			if ci[x] < len(cs[x]) {
				k := cs[x][ci[x]].key
				if k > hi {
					ci[x] = len(cs[x]) // sorted: past hi means exhausted
					continue
				}
				if !have || k < best {
					best, have = k, true
				}
			}
		}
		if ri < len(recs) && recs[ri].Key <= hi {
			if !have || recs[ri].Key < best {
				best, have = recs[ri].Key, true
			}
		}
		if !have {
			break
		}
		var r deltaRec
		src := -1
		for x := 0; x < 4; x++ {
			if ci[x] < len(cs[x]) && cs[x][ci[x]].key == best {
				if src < 0 {
					r, src = cs[x][ci[x]], x
				}
				ci[x]++
			}
		}
		if ri < len(recs) && recs[ri].Key == best {
			if src < 0 {
				r, src = deltaRec{key: best, val: recs[ri].Value}, 4
			}
			ri++
		}
		if r.del {
			continue
		}
		count++
		if !fn(r.key, r.val) {
			break
		}
	}
	*pap = pa
	sh.parent.putDrec(pap)
	*pfp = pf
	sh.parent.putDrec(pfp)
	return count
}

// compactTailWindow is compactTail restricted to keys in [lo, hi].
func compactTailWindow(d *delta, lo, hi core.Key, out []deltaRec) []deltaRec {
	n := int(d.tailLen.Load())
	for i := 0; i < n; i++ {
		r := d.tail[i]
		if r.key < lo || r.key > hi {
			continue
		}
		pos, found := deltaFind(out, r.key)
		if found {
			out[pos] = r
			continue
		}
		out = append(out, deltaRec{})
		copy(out[pos+1:], out[pos:])
		out[pos] = r
	}
	return out
}
