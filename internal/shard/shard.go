package shard

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
)

// Index mirrors the public one-dimensional read interface structurally
// (like internal/conform does), so this package does not depend on the
// façade's named types.
type Index interface {
	Get(k core.Key) (core.Value, bool)
	Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int
	Len() int
	Stats() core.Stats
}

// MutableIndex is an Index supporting upserts and deletes.
type MutableIndex interface {
	Index
	Insert(k core.Key, v core.Value)
	Delete(k core.Key) bool
}

// LockMode selects the per-shard concurrency scheme.
type LockMode uint8

// The lock modes.
const (
	// LockRW guards each shard's mutable index with a sync.RWMutex.
	LockRW LockMode = iota
	// LockRCU keeps each shard as an immutable snapshot plus two delta
	// overlays behind atomic pointers: reads pin an epoch and never touch
	// a lock, writers serialize per shard and append to a bounded delta,
	// and a background goroutine folds the delta into a fresh snapshot.
	LockRCU
)

func (m LockMode) String() string {
	switch m {
	case LockRW:
		return "rw"
	case LockRCU:
		return "rcu"
	}
	return fmt.Sprintf("LockMode(%d)", uint8(m))
}

// DefaultDeltaCap is the LockRCU sorted-delta size that schedules a
// background snapshot merge when Config.DeltaCap is zero.
const DefaultDeltaCap = 1024

// DefaultDeltaBoundFactor sets Config.DeltaBound to this multiple of
// DeltaCap when zero: writers may run ahead of an in-flight merge by up
// to factor× the merge trigger before backpressure blocks them.
const DefaultDeltaBoundFactor = 4

// Config sizes a Sharded instance.
type Config struct {
	// Shards is the shard count (default 8).
	Shards int
	// Mode selects the per-shard concurrency scheme (default LockRW).
	Mode LockMode
	// DeltaCap is the per-shard sorted-delta size that schedules a
	// background RCU snapshot merge (LockRCU only; 0 selects
	// DefaultDeltaCap).
	DeltaCap int
	// DeltaBound is the hard per-shard sorted-delta size: a writer about
	// to grow the delta past it while a merge is in flight blocks until
	// the merge completes (LockRCU only; 0 selects
	// DefaultDeltaBoundFactor×DeltaCap, values below DeltaCap are raised
	// to DeltaCap).
	DeltaBound int
	// MetricsPrefix, when non-empty, attaches one obs.Metrics bundle per
	// shard named "<prefix>-shard<i>"; per-op counters and latency
	// histograms are recorded into the owning shard's bundle and
	// structural events (RCU swaps) are routed there too.
	MetricsPrefix string
}

// Builders supplies the per-shard index constructors. LockRW requires New
// (Bulk optional, used for bulk builds); LockRCU requires Static.
type Builders struct {
	// New returns an empty mutable shard backend (LockRW).
	New func() (MutableIndex, error)
	// Bulk builds a mutable shard backend over sorted records (LockRW);
	// nil falls back to New plus per-record inserts.
	Bulk func(recs []core.KV) (MutableIndex, error)
	// Static builds an immutable RCU snapshot over sorted records
	// (LockRCU). It must accept an empty record set.
	Static func(recs []core.KV) (Index, error)
}

// Sharded is the range-partitioned concurrent front-end. All methods are
// safe for concurrent use.
type Sharded struct {
	mode   LockMode
	router Router
	rw     []*rwShard
	rcu    []*rcuShard
	hook   obs.Hook // external recorder for structural events
	mets   []*obs.Metrics

	// epoch is the reclamation domain shared by all RCU shards: one pin
	// covers a whole cross-shard batch (epoch.go).
	epoch epochDomain

	// Buffer pools. scratch holds *batchScratch group buffers reused
	// across batched calls; drecs and recs recycle delta and snapshot
	// buffers handed back by the epoch domain.
	scratch sync.Pool
	drecs   sync.Pool
	recs    sync.Pool
}

// rwShard is one LockRW shard.
type rwShard struct {
	mu sync.RWMutex
	ix MutableIndex
}

// snapshot is the immutable read side of one LockRCU shard: the sorted
// records and a read-optimized index built over them. recs is never
// mutated after publication. owned marks recs as pool-recyclable — the
// initial snapshot borrows the caller's bulk-build slice and must never
// be recycled into a write target.
type snapshot struct {
	recs  []core.KV
	ix    Index
	owned bool
}

// deltaRec is one delta entry; del marks a tombstone.
type deltaRec struct {
	key core.Key
	val core.Value
	del bool
}

// rcuShard is one LockRCU shard. Readers pin the parent epoch domain and
// load active → frozen → snap (all atomic, lock-free); writers serialize
// on mu and append into the active delta's tail; background merges fold
// frozen into a new snapshot (rcu.go).
type rcuShard struct {
	snap   atomic.Pointer[snapshot]
	active atomic.Pointer[delta]
	frozen atomic.Pointer[delta]
	size   atomic.Int64

	mu        sync.Mutex
	mergeCond *sync.Cond // signaled when a background merge finishes
	merging   bool
	closed    bool

	cap    int // sorted-delta size that schedules a background merge
	bound  int // sorted-delta size at which writers block (backpressure)
	build  func(recs []core.KV) (Index, error)
	swaps  atomic.Uint64
	stalls atomic.Uint64 // writer backpressure waits, for tests/stats
	parent *Sharded
	id     int
}

// New builds a Sharded over recs (sorted ascending, distinct keys; may be
// empty). The router splits at the record quantiles when records are
// available, else uniformly over the key space. Shards build in parallel,
// one goroutine per shard, and the first builder error aborts the join.
func New(recs []core.KV, cfg Config, b Builders) (*Sharded, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.DeltaCap <= 0 {
		cfg.DeltaCap = DefaultDeltaCap
	}
	if cfg.DeltaBound <= 0 {
		cfg.DeltaBound = DefaultDeltaBoundFactor * cfg.DeltaCap
	}
	if cfg.DeltaBound < cfg.DeltaCap {
		cfg.DeltaBound = cfg.DeltaCap
	}
	switch cfg.Mode {
	case LockRW:
		if b.New == nil && b.Bulk == nil {
			return nil, fmt.Errorf("shard: LockRW requires Builders.New or Builders.Bulk")
		}
	case LockRCU:
		if b.Static == nil {
			return nil, fmt.Errorf("shard: LockRCU requires Builders.Static")
		}
	default:
		return nil, fmt.Errorf("shard: unknown lock mode %v", cfg.Mode)
	}
	router := QuantileRouter(recs, cfg.Shards)
	if err := router.validate(); err != nil {
		return nil, err
	}
	s := &Sharded{mode: cfg.Mode, router: router}
	if cfg.MetricsPrefix != "" {
		s.mets = make([]*obs.Metrics, cfg.Shards)
		for i := range s.mets {
			s.mets[i] = obs.NewMetrics(fmt.Sprintf("%s-shard%d", cfg.MetricsPrefix, i))
		}
	}
	parts := router.Partition(recs)
	tail := tailCap(cfg.DeltaCap)

	// Parallel bulk build: one goroutine per shard, errgroup-style join.
	built := make([]any, cfg.Shards)
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			part := parts[i]
			switch cfg.Mode {
			case LockRW:
				var ix MutableIndex
				var err error
				if b.Bulk != nil {
					ix, err = b.Bulk(part)
				} else {
					ix, err = b.New()
					if err == nil {
						for _, r := range part {
							ix.Insert(r.Key, r.Value)
						}
					}
				}
				built[i], errs[i] = ix, err
			case LockRCU:
				ix, err := b.Static(part)
				if err != nil {
					errs[i] = err
					return
				}
				sh := &rcuShard{
					cap: cfg.DeltaCap, bound: cfg.DeltaBound,
					build: b.Static, parent: s, id: i,
				}
				sh.mergeCond = sync.NewCond(&sh.mu)
				sh.snap.Store(&snapshot{recs: part, ix: ix})
				sh.active.Store(&delta{tail: make([]deltaRec, tail)})
				sh.frozen.Store(&emptyDelta)
				sh.size.Store(int64(len(part)))
				built[i] = sh
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	switch cfg.Mode {
	case LockRW:
		s.rw = make([]*rwShard, cfg.Shards)
		for i := range s.rw {
			s.rw[i] = &rwShard{ix: built[i].(MutableIndex)}
		}
	case LockRCU:
		s.rcu = make([]*rcuShard, cfg.Shards)
		for i := range s.rcu {
			s.rcu[i] = built[i].(*rcuShard)
		}
	}
	return s, nil
}

// tailCap sizes the delta append tail: half the merge trigger, clamped
// to [8, 128] so point reads scan a bounded tail and folds amortize over
// enough appends.
func tailCap(deltaCap int) int {
	t := deltaCap / 2
	if t < 8 {
		t = 8
	}
	if t > 128 {
		t = 128
	}
	return t
}

// SetObserver routes structural events (RCU snapshot swaps, labeled with
// the emitting shard) into r; nil detaches.
func (s *Sharded) SetObserver(r obs.Recorder) { s.hook.SetRecorder(r) }

// ShardMetrics returns the per-shard metrics bundles, nil unless
// Config.MetricsPrefix was set.
func (s *Sharded) ShardMetrics() []*obs.Metrics { return s.mets }

// Mode returns the configured lock mode.
func (s *Sharded) Mode() LockMode { return s.mode }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return s.router.Shards() }

// Router returns the key→shard router.
func (s *Sharded) Router() Router { return s.router }

// ---------------------------------------------------------------------------
// Buffer pools
// ---------------------------------------------------------------------------

// getDrec returns a pooled deltaRec buffer (length 0) with capacity ≥ n.
func (s *Sharded) getDrec(n int) *[]deltaRec {
	if p, _ := s.drecs.Get().(*[]deltaRec); p != nil && cap(*p) >= n {
		*p = (*p)[:0]
		return p
	}
	b := make([]deltaRec, 0, n)
	return &b
}

func (s *Sharded) putDrec(p *[]deltaRec) { s.drecs.Put(p) }

// getTail returns a pooled full-length tail buffer of length n. Entries
// above the published tailLen are garbage by design — readers never look
// past the atomic length.
func (s *Sharded) getTail(n int) []deltaRec {
	p := s.getDrec(n)
	return (*p)[:n]
}

// getRecs returns a pooled KV buffer (length 0) with capacity ≥ n.
func (s *Sharded) getRecs(n int) *[]core.KV {
	if p, _ := s.recs.Get().(*[]core.KV); p != nil && cap(*p) >= n {
		*p = (*p)[:0]
		return p
	}
	b := make([]core.KV, 0, n)
	return &b
}

func (s *Sharded) putRecs(p *[]core.KV) { s.recs.Put(p) }

// ---------------------------------------------------------------------------
// Point operations
// ---------------------------------------------------------------------------

// Get returns the value stored for k.
func (s *Sharded) Get(k core.Key) (core.Value, bool) {
	si := s.router.Route(k)
	var start time.Time
	if s.mets != nil {
		start = time.Now()
	}
	var v core.Value
	var ok bool
	if s.mode == LockRW {
		sh := s.rw[si]
		sh.mu.RLock()
		v, ok = sh.ix.Get(k)
		sh.mu.RUnlock()
	} else {
		v, ok = s.rcu[si].get(k)
	}
	if s.mets != nil {
		m := s.mets[si]
		m.GetNS.Observe(uint64(time.Since(start)))
		m.Lookups.Inc()
		if ok {
			m.Hits.Inc()
		}
	}
	return v, ok
}

// Insert upserts (k, v).
func (s *Sharded) Insert(k core.Key, v core.Value) {
	si := s.router.Route(k)
	var start time.Time
	if s.mets != nil {
		start = time.Now()
	}
	if s.mode == LockRW {
		sh := s.rw[si]
		sh.mu.Lock()
		sh.ix.Insert(k, v)
		sh.mu.Unlock()
	} else {
		s.rcu[si].insert(k, v)
	}
	if s.mets != nil {
		m := s.mets[si]
		m.InsertNS.Observe(uint64(time.Since(start)))
		m.Inserts.Inc()
	}
}

// Delete removes k, reporting whether it was present.
func (s *Sharded) Delete(k core.Key) bool {
	si := s.router.Route(k)
	var start time.Time
	if s.mets != nil {
		start = time.Now()
	}
	var ok bool
	if s.mode == LockRW {
		sh := s.rw[si]
		sh.mu.Lock()
		ok = sh.ix.Delete(k)
		sh.mu.Unlock()
	} else {
		ok = s.rcu[si].delete(k)
	}
	if s.mets != nil {
		m := s.mets[si]
		m.DeleteNS.Observe(uint64(time.Since(start)))
		m.Deletes.Inc()
	}
	return ok
}

// Len returns the number of records across all shards.
func (s *Sharded) Len() int {
	total := 0
	for i := 0; i < s.Shards(); i++ {
		total += s.shardLen(i)
	}
	return total
}

// ShardLen returns the number of records in shard i.
func (s *Sharded) ShardLen(i int) int { return s.shardLen(i) }

func (s *Sharded) shardLen(i int) int {
	if s.mode == LockRW {
		sh := s.rw[i]
		sh.mu.RLock()
		n := sh.ix.Len()
		sh.mu.RUnlock()
		return n
	}
	return int(s.rcu[i].size.Load())
}

// Imbalance is the shard-imbalance gauge: the largest shard's share of the
// records divided by the ideal equal share (1 = perfectly balanced,
// Shards() = everything on one shard, 0 = empty index).
func (s *Sharded) Imbalance() float64 {
	total, max := 0, 0
	for i := 0; i < s.Shards(); i++ {
		n := s.shardLen(i)
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(s.Shards()) / float64(total)
}

// RCUSwaps returns the total number of snapshot swaps across shards (0 in
// LockRW mode).
func (s *Sharded) RCUSwaps() uint64 {
	var n uint64
	for _, sh := range s.rcu {
		n += sh.swaps.Load()
	}
	return n
}

// RCUStalls returns the total number of writer backpressure waits — times
// a writer blocked because the active delta hit DeltaBound while a merge
// was in flight (0 in LockRW mode).
func (s *Sharded) RCUStalls() uint64 {
	var n uint64
	for _, sh := range s.rcu {
		n += sh.stalls.Load()
	}
	return n
}

// EpochReclaims returns the number of retired buffers the epoch domain
// has recycled so far (0 in LockRW mode).
func (s *Sharded) EpochReclaims() uint64 { return s.epoch.reclaims.Load() }

// DeltaLen returns the record count currently overlaying RCU shard i's
// snapshot (active + frozen, sorted + tail); 0 in LockRW mode.
func (s *Sharded) DeltaLen(i int) int {
	if s.mode != LockRCU {
		return 0
	}
	sh := s.rcu[i]
	return sh.active.Load().overlay() + sh.frozen.Load().overlay()
}

// DeltaCeiling returns the guaranteed upper bound on any single delta
// level's overlay under write saturation: DeltaBound plus the append
// tail size. The conform stress tier asserts DeltaLen never exceeds
// twice this (active + frozen each obey it).
func (s *Sharded) DeltaCeiling() int {
	if s.mode != LockRCU || len(s.rcu) == 0 {
		return 0
	}
	sh := s.rcu[0]
	return sh.bound + len(sh.active.Load().tail)
}

// WaitMerges blocks until every RCU shard has drained its merge
// pipeline: in-flight background merges complete and cap-exceeding
// active deltas are merged too. A no-op in LockRW mode. Intended for
// tests and benchmarks that need deterministic swap counts; with
// concurrent writers the pipeline may refill immediately.
func (s *Sharded) WaitMerges() {
	for _, sh := range s.rcu {
		sh.mu.Lock()
		sh.waitMergesLocked()
		sh.mu.Unlock()
	}
}

// Stats aggregates the per-shard structure statistics.
func (s *Sharded) Stats() core.Stats {
	agg := core.Stats{Name: fmt.Sprintf("sharded-%s(%d)", s.mode, s.Shards())}
	for i := 0; i < s.Shards(); i++ {
		var st core.Stats
		if s.mode == LockRW {
			sh := s.rw[i]
			sh.mu.RLock()
			st = sh.ix.Stats()
			sh.mu.RUnlock()
		} else {
			sh := s.rcu[i]
			snap := sh.snap.Load()
			st = snap.ix.Stats()
			st.Count = int(sh.size.Load())
			st.IndexBytes += s.DeltaLen(i) * 24
		}
		agg.Count += st.Count
		agg.IndexBytes += st.IndexBytes
		agg.DataBytes += st.DataBytes
		agg.Models += st.Models
		if st.Height > agg.Height {
			agg.Height = st.Height
		}
	}
	return agg
}

// ---------------------------------------------------------------------------
// Range operations
// ---------------------------------------------------------------------------

// Range calls fn for every record with lo <= key <= hi in ascending order,
// visiting the covered shards in shard order (which is key order); fn
// returning false stops the scan. It returns the number of records
// visited.
func (s *Sharded) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	if lo > hi {
		return 0
	}
	var start time.Time
	if s.mets != nil {
		start = time.Now()
	}
	first, last := s.router.Route(lo), s.router.Route(hi)
	count, stopped := 0, false
	for si := first; si <= last && !stopped; si++ {
		count += s.shardRange(si, lo, hi, func(k core.Key, v core.Value) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
	}
	if s.mets != nil {
		m := s.mets[first]
		m.RangeNS.Observe(uint64(time.Since(start)))
		m.RangeLen.Observe(uint64(count))
		m.Ranges.Inc()
	}
	return count
}

func (s *Sharded) shardRange(si int, lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	if s.mode == LockRW {
		sh := s.rw[si]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.ix.Range(lo, hi, fn)
	}
	return s.rcu[si].rangeScan(lo, hi, fn)
}

// SearchRange collects every record with lo <= key <= hi, fanning the scan
// out across the covered shards in parallel (on multi-core hosts) and
// concatenating the per-shard results in shard order (range partitioning
// makes concatenation the ordered merge). The result is always non-nil:
// an empty index, an empty shard or an empty interval all yield an empty
// slice, pinning the façade-wide empty-slice normalization.
func (s *Sharded) SearchRange(lo, hi core.Key) []core.KV {
	out := []core.KV{}
	if lo > hi {
		return out
	}
	first, last := s.router.Route(lo), s.router.Route(hi)
	if first == last || runtime.GOMAXPROCS(0) == 1 {
		for si := first; si <= last; si++ {
			s.shardRange(si, lo, hi, func(k core.Key, v core.Value) bool {
				out = append(out, core.KV{Key: k, Value: v})
				return true
			})
		}
		return out
	}
	parts := make([][]core.KV, last-first+1)
	var wg sync.WaitGroup
	for si := first; si <= last; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			var part []core.KV
			s.shardRange(si, lo, hi, func(k core.Key, v core.Value) bool {
				part = append(part, core.KV{Key: k, Value: v})
				return true
			})
			parts[si-first] = part
		}(si)
	}
	wg.Wait()
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// ---------------------------------------------------------------------------
// Batched operations
// ---------------------------------------------------------------------------

// batchParallelMin is the batch size below which per-shard groups are
// executed inline on the calling goroutine: the fan-out only pays for
// itself once per-shard work outweighs goroutine handoff (and never on a
// single-core host). The allocation regression tier relies on sizes
// below this staying on the inline (allocation-free) path.
const batchParallelMin = 512

func (s *Sharded) parallelBatch(n int) bool {
	return n >= batchParallelMin && s.Shards() > 1 && runtime.GOMAXPROCS(0) > 1
}

// batchScratch is the reusable counting-sort workspace for batch
// grouping, pooled on the Sharded so grouping allocates nothing in
// steady state. idx[starts[si]:starts[si+1]] lists the input positions
// owned by shard si, preserving input order — the order batch semantics
// (later-wins upserts, first-wins deletes) depend on.
type batchScratch struct {
	shardOf []int32
	starts  []int32
	cur     []int32
	idx     []int32
}

func (sc *batchScratch) grow(n, shards int) {
	if cap(sc.shardOf) < n {
		sc.shardOf = make([]int32, n)
		sc.idx = make([]int32, n)
	}
	sc.shardOf = sc.shardOf[:n]
	sc.idx = sc.idx[:n]
	if cap(sc.starts) < shards+1 {
		sc.starts = make([]int32, shards+1)
		sc.cur = make([]int32, shards)
	}
	sc.starts = sc.starts[:shards+1]
	sc.cur = sc.cur[:shards]
}

// fill builds starts/idx from shardOf (with per-shard counts already in
// cur) by counting sort: prefix-sum, then stable placement.
func (sc *batchScratch) fill(shards int) {
	off := int32(0)
	for si := 0; si < shards; si++ {
		sc.starts[si] = off
		off += sc.cur[si]
		sc.cur[si] = sc.starts[si]
	}
	sc.starts[shards] = off
	for i, si := range sc.shardOf {
		sc.idx[sc.cur[si]] = int32(i)
		sc.cur[si]++
	}
}

func (s *Sharded) getScratch() *batchScratch {
	if sc, _ := s.scratch.Get().(*batchScratch); sc != nil {
		return sc
	}
	return &batchScratch{}
}

func (s *Sharded) putScratch(sc *batchScratch) { s.scratch.Put(sc) }

// groupKeys groups keys by owning shard. When every key routes to the
// same shard — the common case for clustered keys under range
// partitioning — it returns that shard and skips the counting sort
// entirely; callers then process keys in input order with a nil idx.
// Otherwise it returns -1 with starts/idx filled.
func (s *Sharded) groupKeys(keys []core.Key, sc *batchScratch) int {
	ns := s.router.Shards()
	sc.grow(len(keys), ns)
	for i := range sc.cur {
		sc.cur[i] = 0
	}
	first := int32(s.router.Route(keys[0]))
	single := true
	for i, k := range keys {
		si := int32(s.router.Route(k))
		sc.shardOf[i] = si
		sc.cur[si]++
		single = single && si == first
	}
	if single {
		return int(first)
	}
	sc.fill(ns)
	return -1
}

// groupRecs is groupKeys over record keys.
func (s *Sharded) groupRecs(recs []core.KV, sc *batchScratch) int {
	ns := s.router.Shards()
	sc.grow(len(recs), ns)
	for i := range sc.cur {
		sc.cur[i] = 0
	}
	first := int32(s.router.Route(recs[0].Key))
	single := true
	for i := range recs {
		si := int32(s.router.Route(recs[i].Key))
		sc.shardOf[i] = si
		sc.cur[si]++
		single = single && si == first
	}
	if single {
		return int(first)
	}
	sc.fill(ns)
	return -1
}

// LookupBatchInto resolves keys in one pass, writing answers into the
// caller-supplied vals and oks slices (len(keys) each): zero allocations
// in steady state, pinned by the allocation regression tier.
//
// Small batches run a lock-coalescing loop: keys are answered in input
// order, holding a shard's read lock only while consecutive keys stay in
// that shard — one lock acquisition per batch for clustered keys, never
// more than looped Gets for scattered ones, and no grouping pass at all
// (RCU shards take no lock either way; the whole batch runs under one
// epoch pin). Large batches on multi-core hosts are grouped by shard
// with a pooled counting sort and fan out one goroutine per shard.
func (s *Sharded) LookupBatchInto(keys []core.Key, vals []core.Value, oks []bool) {
	if len(vals) != len(keys) || len(oks) != len(keys) {
		panic("shard: LookupBatchInto: vals/oks length must equal len(keys)")
	}
	if len(keys) == 0 {
		return
	}
	if !s.parallelBatch(len(keys)) && s.mets == nil {
		s.lookupCoalesced(keys, vals, oks)
		return
	}
	sc := s.getScratch()
	single := s.groupKeys(keys, sc)
	var slot *epochSlot
	if s.mode == LockRCU {
		slot = s.epoch.pin()
	}
	if single >= 0 {
		s.lookupGroup(single, nil, keys, vals, oks)
	} else if s.parallelBatch(len(keys)) {
		var wg sync.WaitGroup
		for si := 0; si < s.Shards(); si++ {
			b, e := sc.starts[si], sc.starts[si+1]
			if b == e {
				continue
			}
			wg.Add(1)
			go func(si int, idx []int32) {
				defer wg.Done()
				s.lookupGroup(si, idx, keys, vals, oks)
			}(si, sc.idx[b:e])
		}
		wg.Wait()
	} else {
		for si := 0; si < s.Shards(); si++ {
			if b, e := sc.starts[si], sc.starts[si+1]; b != e {
				s.lookupGroup(si, sc.idx[b:e], keys, vals, oks)
			}
		}
	}
	if slot != nil {
		s.epoch.unpin(slot)
	}
	s.putScratch(sc)
}

// lookupCoalesced is the small-batch lookup path: in-order with
// coalesced locking, no grouping, no allocations, no per-shard metric
// attribution (callers route metric-attached layers through the grouped
// path instead).
func (s *Sharded) lookupCoalesced(keys []core.Key, vals []core.Value, oks []bool) {
	if s.mode == LockRCU {
		slot := s.epoch.pin()
		for i, k := range keys {
			vals[i], oks[i] = s.rcu[s.router.Route(k)].read(k)
		}
		s.epoch.unpin(slot)
		return
	}
	last := -1
	var sh *rwShard
	for i, k := range keys {
		if si := s.router.Route(k); si != last {
			if sh != nil {
				sh.mu.RUnlock()
			}
			sh = s.rw[si]
			sh.mu.RLock()
			last = si
		}
		vals[i], oks[i] = sh.ix.Get(k)
	}
	sh.mu.RUnlock()
}

// LookupBatch resolves keys in one pass. vals[i], oks[i] answer keys[i].
func (s *Sharded) LookupBatch(keys []core.Key) (vals []core.Value, oks []bool) {
	vals = make([]core.Value, len(keys))
	oks = make([]bool, len(keys))
	s.LookupBatchInto(keys, vals, oks)
	return vals, oks
}

// lookupGroup resolves one shard's group. A nil idx means the whole
// batch routed to this shard: keys are processed in input order with no
// index indirection (the single-shard fast path).
func (s *Sharded) lookupGroup(si int, idx []int32, keys []core.Key, vals []core.Value, oks []bool) {
	hits, n := 0, len(idx)
	if idx == nil {
		n = len(keys)
	}
	if s.mode == LockRW {
		sh := s.rw[si]
		sh.mu.RLock()
		if idx == nil {
			for i, k := range keys {
				vals[i], oks[i] = sh.ix.Get(k)
				if oks[i] {
					hits++
				}
			}
		} else {
			for _, i := range idx {
				vals[i], oks[i] = sh.ix.Get(keys[i])
				if oks[i] {
					hits++
				}
			}
		}
		sh.mu.RUnlock()
	} else {
		sh := s.rcu[si]
		if idx == nil {
			for i, k := range keys {
				vals[i], oks[i] = sh.read(k)
				if oks[i] {
					hits++
				}
			}
		} else {
			for _, i := range idx {
				vals[i], oks[i] = sh.read(keys[i])
				if oks[i] {
					hits++
				}
			}
		}
	}
	if s.mets != nil {
		m := s.mets[si]
		m.Lookups.Add(uint64(n))
		m.Hits.Add(uint64(hits))
	}
}

// InsertBatch upserts recs in one pass. Small batches apply in input
// order with coalesced locking — a shard's write lock is held while
// consecutive records stay in that shard, which preserves sequential
// later-wins semantics by construction. Large batches on multi-core
// hosts group by shard and fan out one goroutine per shard (input order
// within each shard, so cross-batch duplicates still resolve
// later-wins).
func (s *Sharded) InsertBatch(recs []core.KV) {
	if len(recs) == 0 {
		return
	}
	if !s.parallelBatch(len(recs)) && s.mets == nil {
		s.insertCoalesced(recs)
		return
	}
	sc := s.getScratch()
	single := s.groupRecs(recs, sc)
	if single >= 0 {
		s.insertGroup(single, nil, recs)
	} else if s.parallelBatch(len(recs)) {
		var wg sync.WaitGroup
		for si := 0; si < s.Shards(); si++ {
			b, e := sc.starts[si], sc.starts[si+1]
			if b == e {
				continue
			}
			wg.Add(1)
			go func(si int, idx []int32) {
				defer wg.Done()
				s.insertGroup(si, idx, recs)
			}(si, sc.idx[b:e])
		}
		wg.Wait()
	} else {
		for si := 0; si < s.Shards(); si++ {
			if b, e := sc.starts[si], sc.starts[si+1]; b != e {
				s.insertGroup(si, sc.idx[b:e], recs)
			}
		}
	}
	s.putScratch(sc)
}

// insertGroup applies one shard's group; nil idx means the whole batch
// (input order, no indirection).
func (s *Sharded) insertGroup(si int, idx []int32, recs []core.KV) {
	n := len(idx)
	if idx == nil {
		n = len(recs)
	}
	if s.mode == LockRW {
		sh := s.rw[si]
		sh.mu.Lock()
		if idx == nil {
			for i := range recs {
				sh.ix.Insert(recs[i].Key, recs[i].Value)
			}
		} else {
			for _, i := range idx {
				sh.ix.Insert(recs[i].Key, recs[i].Value)
			}
		}
		sh.mu.Unlock()
	} else {
		s.rcu[si].insertGroup(recs, idx)
	}
	if s.mets != nil {
		s.mets[si].Inserts.Add(uint64(n))
	}
}

// insertCoalesced is the small-batch insert path: in-order with
// coalesced locking, no grouping pass.
func (s *Sharded) insertCoalesced(recs []core.KV) {
	last := -1
	if s.mode == LockRW {
		var sh *rwShard
		for i := range recs {
			if si := s.router.Route(recs[i].Key); si != last {
				if sh != nil {
					sh.mu.Unlock()
				}
				sh = s.rw[si]
				sh.mu.Lock()
				last = si
			}
			sh.ix.Insert(recs[i].Key, recs[i].Value)
		}
		sh.mu.Unlock()
		return
	}
	var sh *rcuShard
	for i := range recs {
		if si := s.router.Route(recs[i].Key); si != last {
			if sh != nil {
				sh.mu.Unlock()
			}
			sh = s.rcu[si]
			sh.mu.Lock()
			last = si
		}
		sh.applyInsertLocked(recs[i])
	}
	sh.mu.Unlock()
}

// DeleteBatch removes keys in one pass. oks[i] reports whether keys[i]
// was present, with sequential semantics: within one batch, the first
// occurrence of a duplicated key reports its liveness and later
// occurrences report false — exactly what a sequential Delete loop would
// observe. Small batches apply in input order with coalesced locking;
// large batches on multi-core hosts group by shard and fan out.
func (s *Sharded) DeleteBatch(keys []core.Key) []bool {
	oks := make([]bool, len(keys))
	if len(keys) == 0 {
		return oks
	}
	if !s.parallelBatch(len(keys)) && s.mets == nil {
		s.deleteCoalesced(keys, oks)
		return oks
	}
	sc := s.getScratch()
	single := s.groupKeys(keys, sc)
	if single >= 0 {
		s.deleteGroup(single, nil, keys, oks)
	} else if s.parallelBatch(len(keys)) {
		var wg sync.WaitGroup
		for si := 0; si < s.Shards(); si++ {
			b, e := sc.starts[si], sc.starts[si+1]
			if b == e {
				continue
			}
			wg.Add(1)
			go func(si int, idx []int32) {
				defer wg.Done()
				s.deleteGroup(si, idx, keys, oks)
			}(si, sc.idx[b:e])
		}
		wg.Wait()
	} else {
		for si := 0; si < s.Shards(); si++ {
			if b, e := sc.starts[si], sc.starts[si+1]; b != e {
				s.deleteGroup(si, sc.idx[b:e], keys, oks)
			}
		}
	}
	s.putScratch(sc)
	return oks
}

// deleteGroup applies one shard's group; nil idx means the whole batch
// (input order, no indirection).
func (s *Sharded) deleteGroup(si int, idx []int32, keys []core.Key, oks []bool) {
	n := len(idx)
	if idx == nil {
		n = len(keys)
	}
	if s.mode == LockRW {
		sh := s.rw[si]
		sh.mu.Lock()
		if idx == nil {
			for i, k := range keys {
				oks[i] = sh.ix.Delete(k)
			}
		} else {
			for _, i := range idx {
				oks[i] = sh.ix.Delete(keys[i])
			}
		}
		sh.mu.Unlock()
	} else {
		s.rcu[si].deleteGroup(keys, idx, oks)
	}
	if s.mets != nil {
		s.mets[si].Deletes.Add(uint64(n))
	}
}

// deleteCoalesced is the small-batch delete path: in-order with
// coalesced locking, no grouping pass.
func (s *Sharded) deleteCoalesced(keys []core.Key, oks []bool) {
	last := -1
	if s.mode == LockRW {
		var sh *rwShard
		for i, k := range keys {
			if si := s.router.Route(k); si != last {
				if sh != nil {
					sh.mu.Unlock()
				}
				sh = s.rw[si]
				sh.mu.Lock()
				last = si
			}
			oks[i] = sh.ix.Delete(k)
		}
		sh.mu.Unlock()
		return
	}
	var sh *rcuShard
	for i, k := range keys {
		if si := s.router.Route(k); si != last {
			if sh != nil {
				sh.mu.Unlock()
			}
			sh = s.rcu[si]
			sh.mu.Lock()
			last = si
		}
		oks[i] = sh.applyDeleteLocked(k)
	}
	sh.mu.Unlock()
}

// Close drains in-flight background merges, then forwards Close to every
// shard backend with the io.Closer capability, returning the first
// error. Shard backends are in-memory today, so the backend half is
// usually a no-op, but the capability must survive the wrapper for
// stacks built over closeable backends.
func (s *Sharded) Close() error {
	var first error
	closeIx := func(ix Index) {
		if c, ok := ix.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if s.mode == LockRW {
		for _, sh := range s.rw {
			sh.mu.Lock()
			closeIx(sh.ix)
			sh.mu.Unlock()
		}
		return first
	}
	for _, sh := range s.rcu {
		sh.mu.Lock()
		sh.closed = true // stop scheduleLocked from spawning new merges
		for sh.merging {
			sh.mergeCond.Wait()
		}
		closeIx(sh.snap.Load().ix)
		sh.mu.Unlock()
	}
	s.epoch.collect()
	return first
}
