package shard

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
)

// Index mirrors the public one-dimensional read interface structurally
// (like internal/conform does), so this package does not depend on the
// façade's named types.
type Index interface {
	Get(k core.Key) (core.Value, bool)
	Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int
	Len() int
	Stats() core.Stats
}

// MutableIndex is an Index supporting upserts and deletes.
type MutableIndex interface {
	Index
	Insert(k core.Key, v core.Value)
	Delete(k core.Key) bool
}

// LockMode selects the per-shard concurrency scheme.
type LockMode uint8

// The lock modes.
const (
	// LockRW guards each shard's mutable index with a sync.RWMutex.
	LockRW LockMode = iota
	// LockRCU keeps each shard as an immutable snapshot + copy-on-write
	// delta behind atomic pointers: reads are lock-free, writers serialize
	// per shard and swap a freshly built snapshot when the delta fills.
	LockRCU
)

func (m LockMode) String() string {
	switch m {
	case LockRW:
		return "rw"
	case LockRCU:
		return "rcu"
	}
	return fmt.Sprintf("LockMode(%d)", uint8(m))
}

// DefaultDeltaCap is the LockRCU delta size that triggers a snapshot merge
// when Config.DeltaCap is zero.
const DefaultDeltaCap = 1024

// Config sizes a Sharded instance.
type Config struct {
	// Shards is the shard count (default 8).
	Shards int
	// Mode selects the per-shard concurrency scheme (default LockRW).
	Mode LockMode
	// DeltaCap is the per-shard delta size that triggers an RCU snapshot
	// merge (LockRCU only; 0 selects DefaultDeltaCap).
	DeltaCap int
	// MetricsPrefix, when non-empty, attaches one obs.Metrics bundle per
	// shard named "<prefix>-shard<i>"; per-op counters and latency
	// histograms are recorded into the owning shard's bundle and
	// structural events (RCU swaps) are routed there too.
	MetricsPrefix string
}

// Builders supplies the per-shard index constructors. LockRW requires New
// (Bulk optional, used for bulk builds); LockRCU requires Static.
type Builders struct {
	// New returns an empty mutable shard backend (LockRW).
	New func() (MutableIndex, error)
	// Bulk builds a mutable shard backend over sorted records (LockRW);
	// nil falls back to New plus per-record inserts.
	Bulk func(recs []core.KV) (MutableIndex, error)
	// Static builds an immutable RCU snapshot over sorted records
	// (LockRCU). It must accept an empty record set.
	Static func(recs []core.KV) (Index, error)
}

// Sharded is the range-partitioned concurrent front-end. All methods are
// safe for concurrent use.
type Sharded struct {
	mode   LockMode
	router Router
	rw     []*rwShard
	rcu    []*rcuShard
	hook   obs.Hook // external recorder for structural events
	mets   []*obs.Metrics
}

// rwShard is one LockRW shard.
type rwShard struct {
	mu sync.RWMutex
	ix MutableIndex
}

// snapshot is the immutable read side of one LockRCU shard: the sorted
// records and a read-optimized index built over them. recs is never
// mutated after publication.
type snapshot struct {
	recs []core.KV
	ix   Index
}

// deltaRec is one copy-on-write delta entry; del marks a tombstone.
type deltaRec struct {
	key core.Key
	val core.Value
	del bool
}

// rcuShard is one LockRCU shard. Readers load snap then delta (both
// atomic, lock-free); writers serialize on mu, publish grown copies of the
// delta, and on overflow merge delta into a new snapshot and swap.
type rcuShard struct {
	snap  atomic.Pointer[snapshot]
	delta atomic.Pointer[[]deltaRec]
	size  atomic.Int64
	mu    sync.Mutex

	cap    int
	build  func(recs []core.KV) (Index, error)
	swaps  atomic.Uint64
	parent *Sharded
	id     int
}

// New builds a Sharded over recs (sorted ascending, distinct keys; may be
// empty). The router splits at the record quantiles when records are
// available, else uniformly over the key space. Shards build in parallel,
// one goroutine per shard, and the first builder error aborts the join.
func New(recs []core.KV, cfg Config, b Builders) (*Sharded, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.DeltaCap <= 0 {
		cfg.DeltaCap = DefaultDeltaCap
	}
	switch cfg.Mode {
	case LockRW:
		if b.New == nil && b.Bulk == nil {
			return nil, fmt.Errorf("shard: LockRW requires Builders.New or Builders.Bulk")
		}
	case LockRCU:
		if b.Static == nil {
			return nil, fmt.Errorf("shard: LockRCU requires Builders.Static")
		}
	default:
		return nil, fmt.Errorf("shard: unknown lock mode %v", cfg.Mode)
	}
	router := QuantileRouter(recs, cfg.Shards)
	if err := router.validate(); err != nil {
		return nil, err
	}
	s := &Sharded{mode: cfg.Mode, router: router}
	if cfg.MetricsPrefix != "" {
		s.mets = make([]*obs.Metrics, cfg.Shards)
		for i := range s.mets {
			s.mets[i] = obs.NewMetrics(fmt.Sprintf("%s-shard%d", cfg.MetricsPrefix, i))
		}
	}
	parts := router.Partition(recs)

	// Parallel bulk build: one goroutine per shard, errgroup-style join.
	built := make([]any, cfg.Shards)
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			part := parts[i]
			switch cfg.Mode {
			case LockRW:
				var ix MutableIndex
				var err error
				if b.Bulk != nil {
					ix, err = b.Bulk(part)
				} else {
					ix, err = b.New()
					if err == nil {
						for _, r := range part {
							ix.Insert(r.Key, r.Value)
						}
					}
				}
				built[i], errs[i] = ix, err
			case LockRCU:
				ix, err := b.Static(part)
				if err != nil {
					errs[i] = err
					return
				}
				sh := &rcuShard{cap: cfg.DeltaCap, build: b.Static, parent: s, id: i}
				sh.snap.Store(&snapshot{recs: part, ix: ix})
				empty := []deltaRec{}
				sh.delta.Store(&empty)
				sh.size.Store(int64(len(part)))
				built[i] = sh
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	switch cfg.Mode {
	case LockRW:
		s.rw = make([]*rwShard, cfg.Shards)
		for i := range s.rw {
			s.rw[i] = &rwShard{ix: built[i].(MutableIndex)}
		}
	case LockRCU:
		s.rcu = make([]*rcuShard, cfg.Shards)
		for i := range s.rcu {
			s.rcu[i] = built[i].(*rcuShard)
		}
	}
	return s, nil
}

// SetObserver routes structural events (RCU snapshot swaps, labeled with
// the emitting shard) into r; nil detaches.
func (s *Sharded) SetObserver(r obs.Recorder) { s.hook.SetRecorder(r) }

// ShardMetrics returns the per-shard metrics bundles, nil unless
// Config.MetricsPrefix was set.
func (s *Sharded) ShardMetrics() []*obs.Metrics { return s.mets }

// Mode returns the configured lock mode.
func (s *Sharded) Mode() LockMode { return s.mode }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return s.router.Shards() }

// Router returns the key→shard router.
func (s *Sharded) Router() Router { return s.router }

// ---------------------------------------------------------------------------
// Point operations
// ---------------------------------------------------------------------------

// Get returns the value stored for k.
func (s *Sharded) Get(k core.Key) (core.Value, bool) {
	si := s.router.Route(k)
	var start time.Time
	if s.mets != nil {
		start = time.Now()
	}
	var v core.Value
	var ok bool
	if s.mode == LockRW {
		sh := s.rw[si]
		sh.mu.RLock()
		v, ok = sh.ix.Get(k)
		sh.mu.RUnlock()
	} else {
		v, ok = s.rcu[si].get(k)
	}
	if s.mets != nil {
		m := s.mets[si]
		m.GetNS.Observe(uint64(time.Since(start)))
		m.Lookups.Inc()
		if ok {
			m.Hits.Inc()
		}
	}
	return v, ok
}

// Insert upserts (k, v).
func (s *Sharded) Insert(k core.Key, v core.Value) {
	si := s.router.Route(k)
	var start time.Time
	if s.mets != nil {
		start = time.Now()
	}
	if s.mode == LockRW {
		sh := s.rw[si]
		sh.mu.Lock()
		sh.ix.Insert(k, v)
		sh.mu.Unlock()
	} else {
		s.rcu[si].insert(k, v)
	}
	if s.mets != nil {
		m := s.mets[si]
		m.InsertNS.Observe(uint64(time.Since(start)))
		m.Inserts.Inc()
	}
}

// Delete removes k, reporting whether it was present.
func (s *Sharded) Delete(k core.Key) bool {
	si := s.router.Route(k)
	var start time.Time
	if s.mets != nil {
		start = time.Now()
	}
	var ok bool
	if s.mode == LockRW {
		sh := s.rw[si]
		sh.mu.Lock()
		ok = sh.ix.Delete(k)
		sh.mu.Unlock()
	} else {
		ok = s.rcu[si].delete(k)
	}
	if s.mets != nil {
		m := s.mets[si]
		m.DeleteNS.Observe(uint64(time.Since(start)))
		m.Deletes.Inc()
	}
	return ok
}

// Len returns the number of records across all shards.
func (s *Sharded) Len() int {
	total := 0
	for i := 0; i < s.Shards(); i++ {
		total += s.shardLen(i)
	}
	return total
}

// ShardLen returns the number of records in shard i.
func (s *Sharded) ShardLen(i int) int { return s.shardLen(i) }

func (s *Sharded) shardLen(i int) int {
	if s.mode == LockRW {
		sh := s.rw[i]
		sh.mu.RLock()
		n := sh.ix.Len()
		sh.mu.RUnlock()
		return n
	}
	return int(s.rcu[i].size.Load())
}

// Imbalance is the shard-imbalance gauge: the largest shard's share of the
// records divided by the ideal equal share (1 = perfectly balanced,
// Shards() = everything on one shard, 0 = empty index).
func (s *Sharded) Imbalance() float64 {
	total, max := 0, 0
	for i := 0; i < s.Shards(); i++ {
		n := s.shardLen(i)
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(s.Shards()) / float64(total)
}

// RCUSwaps returns the total number of snapshot swaps across shards (0 in
// LockRW mode).
func (s *Sharded) RCUSwaps() uint64 {
	var n uint64
	for _, sh := range s.rcu {
		n += sh.swaps.Load()
	}
	return n
}

// Stats aggregates the per-shard structure statistics.
func (s *Sharded) Stats() core.Stats {
	agg := core.Stats{Name: fmt.Sprintf("sharded-%s(%d)", s.mode, s.Shards())}
	for i := 0; i < s.Shards(); i++ {
		var st core.Stats
		if s.mode == LockRW {
			sh := s.rw[i]
			sh.mu.RLock()
			st = sh.ix.Stats()
			sh.mu.RUnlock()
		} else {
			sh := s.rcu[i]
			snap := sh.snap.Load()
			st = snap.ix.Stats()
			st.Count = int(sh.size.Load())
			st.IndexBytes += len(*sh.delta.Load()) * 24
		}
		agg.Count += st.Count
		agg.IndexBytes += st.IndexBytes
		agg.DataBytes += st.DataBytes
		agg.Models += st.Models
		if st.Height > agg.Height {
			agg.Height = st.Height
		}
	}
	return agg
}

// ---------------------------------------------------------------------------
// Range operations
// ---------------------------------------------------------------------------

// Range calls fn for every record with lo <= key <= hi in ascending order,
// visiting the covered shards in shard order (which is key order); fn
// returning false stops the scan. It returns the number of records
// visited.
func (s *Sharded) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	if lo > hi {
		return 0
	}
	var start time.Time
	if s.mets != nil {
		start = time.Now()
	}
	first, last := s.router.Route(lo), s.router.Route(hi)
	count, stopped := 0, false
	for si := first; si <= last && !stopped; si++ {
		count += s.shardRange(si, lo, hi, func(k core.Key, v core.Value) bool {
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
	}
	if s.mets != nil {
		m := s.mets[first]
		m.RangeNS.Observe(uint64(time.Since(start)))
		m.RangeLen.Observe(uint64(count))
		m.Ranges.Inc()
	}
	return count
}

func (s *Sharded) shardRange(si int, lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	if s.mode == LockRW {
		sh := s.rw[si]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.ix.Range(lo, hi, fn)
	}
	return s.rcu[si].rangeScan(lo, hi, fn)
}

// SearchRange collects every record with lo <= key <= hi, fanning the scan
// out across the covered shards in parallel and concatenating the
// per-shard results in shard order (range partitioning makes concatenation
// the ordered merge). The result is always non-nil: an empty index, an
// empty shard or an empty interval all yield an empty slice, pinning the
// façade-wide empty-slice normalization.
func (s *Sharded) SearchRange(lo, hi core.Key) []core.KV {
	out := []core.KV{}
	if lo > hi {
		return out
	}
	first, last := s.router.Route(lo), s.router.Route(hi)
	if first == last {
		s.shardRange(first, lo, hi, func(k core.Key, v core.Value) bool {
			out = append(out, core.KV{Key: k, Value: v})
			return true
		})
		return out
	}
	parts := make([][]core.KV, last-first+1)
	var wg sync.WaitGroup
	for si := first; si <= last; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			var part []core.KV
			s.shardRange(si, lo, hi, func(k core.Key, v core.Value) bool {
				part = append(part, core.KV{Key: k, Value: v})
				return true
			})
			parts[si-first] = part
		}(si)
	}
	wg.Wait()
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// ---------------------------------------------------------------------------
// Batched operations
// ---------------------------------------------------------------------------

// shardGroups partitions the positions 0..n-1 of keys by owning shard.
func (s *Sharded) shardGroups(keys []core.Key) map[int][]int {
	groups := make(map[int][]int)
	for i, k := range keys {
		si := s.router.Route(k)
		groups[si] = append(groups[si], i)
	}
	return groups
}

// LookupBatch resolves keys in one pass, grouping them by shard so each
// shard's lock is acquired once per batch and shards proceed in parallel.
// vals[i], oks[i] answer keys[i].
func (s *Sharded) LookupBatch(keys []core.Key) (vals []core.Value, oks []bool) {
	vals = make([]core.Value, len(keys))
	oks = make([]bool, len(keys))
	groups := s.shardGroups(keys)
	var wg sync.WaitGroup
	for si, idxs := range groups {
		wg.Add(1)
		go func(si int, idxs []int) {
			defer wg.Done()
			if s.mode == LockRW {
				sh := s.rw[si]
				sh.mu.RLock()
				for _, i := range idxs {
					vals[i], oks[i] = sh.ix.Get(keys[i])
				}
				sh.mu.RUnlock()
			} else {
				sh := s.rcu[si]
				for _, i := range idxs {
					vals[i], oks[i] = sh.get(keys[i])
				}
			}
			if s.mets != nil {
				m := s.mets[si]
				m.Lookups.Add(uint64(len(idxs)))
				for _, i := range idxs {
					if oks[i] {
						m.Hits.Inc()
					}
				}
			}
		}(si, idxs)
	}
	wg.Wait()
	return vals, oks
}

// InsertBatch upserts recs, grouping them by shard so each shard's write
// lock is acquired once per batch (and, in RCU mode, the whole per-shard
// group lands in one copy-on-write delta publication).
func (s *Sharded) InsertBatch(recs []core.KV) {
	keys := make([]core.Key, len(recs))
	for i := range recs {
		keys[i] = recs[i].Key
	}
	groups := s.shardGroups(keys)
	var wg sync.WaitGroup
	for si, idxs := range groups {
		wg.Add(1)
		go func(si int, idxs []int) {
			defer wg.Done()
			if s.mode == LockRW {
				sh := s.rw[si]
				sh.mu.Lock()
				for _, i := range idxs {
					sh.ix.Insert(recs[i].Key, recs[i].Value)
				}
				sh.mu.Unlock()
			} else {
				group := make([]core.KV, len(idxs))
				for j, i := range idxs {
					group[j] = recs[i]
				}
				s.rcu[si].insertBatch(group)
			}
			if s.mets != nil {
				s.mets[si].Inserts.Add(uint64(len(idxs)))
			}
		}(si, idxs)
	}
	wg.Wait()
}

// DeleteBatch removes keys, grouping them by shard so each shard's write
// lock is acquired once per batch. oks[i] reports whether keys[i] was
// present, with sequential semantics: within one batch, the first
// occurrence of a duplicated key reports its liveness and later
// occurrences report false — exactly what a sequential Delete loop would
// observe.
func (s *Sharded) DeleteBatch(keys []core.Key) []bool {
	oks := make([]bool, len(keys))
	groups := s.shardGroups(keys)
	var wg sync.WaitGroup
	for si, idxs := range groups {
		wg.Add(1)
		go func(si int, idxs []int) {
			defer wg.Done()
			if s.mode == LockRW {
				sh := s.rw[si]
				sh.mu.Lock()
				for _, i := range idxs {
					oks[i] = sh.ix.Delete(keys[i])
				}
				sh.mu.Unlock()
			} else {
				group := make([]core.Key, len(idxs))
				for j, i := range idxs {
					group[j] = keys[i]
				}
				for j, ok := range s.rcu[si].deleteBatch(group) {
					oks[idxs[j]] = ok
				}
			}
			if s.mets != nil {
				s.mets[si].Deletes.Add(uint64(len(idxs)))
			}
		}(si, idxs)
	}
	wg.Wait()
	return oks
}

// Close forwards Close to every shard backend with the io.Closer
// capability, returning the first error. Shard backends are in-memory
// today, so this is usually a no-op, but the capability must survive the
// wrapper for stacks built over closeable backends.
func (s *Sharded) Close() error {
	var first error
	closeIx := func(ix Index) {
		if c, ok := ix.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if s.mode == LockRW {
		for _, sh := range s.rw {
			sh.mu.Lock()
			closeIx(sh.ix)
			sh.mu.Unlock()
		}
		return first
	}
	for _, sh := range s.rcu {
		sh.mu.Lock()
		closeIx(sh.snap.Load().ix)
		sh.mu.Unlock()
	}
	return first
}
