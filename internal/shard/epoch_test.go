package shard

import (
	"sync"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

// TestEpochPinBlocksReclaim pins the core safety property: a buffer
// retired while a reader holds an older epoch stays in limbo until that
// reader unpins, and is reclaimed promptly afterwards.
func TestEpochPinBlocksReclaim(t *testing.T) {
	var d epochDomain
	slot := d.pin()

	freed := false
	d.retire(func() { freed = true })
	if freed {
		t.Fatal("buffer freed while a reader from an older epoch is pinned")
	}
	// Further retires and collects must not free it either.
	d.retire(func() {})
	d.collect()
	if freed {
		t.Fatal("buffer freed by a later retire despite the pinned reader")
	}
	if d.pending() == 0 {
		t.Fatal("limbo emptied while a reader is pinned")
	}

	d.unpin(slot)
	d.collect()
	if !freed {
		t.Fatal("buffer not reclaimed after the last reader unpinned")
	}
	if d.pending() != 0 {
		t.Fatalf("limbo holds %d entries after unpin+collect, want 0", d.pending())
	}
}

// TestEpochFreshPinDoesNotBlockOlderGarbage pins the liveness half: a
// reader pinned *after* a retirement must not keep that garbage alive —
// only readers from the retirement epoch or earlier do.
func TestEpochFreshPinDoesNotBlockOlderGarbage(t *testing.T) {
	var d epochDomain
	freed := false
	d.retire(func() { freed = true })

	slot := d.pin() // pinned after the retire: sees only the replacement
	defer d.unpin(slot)
	d.collect()
	if !freed {
		t.Fatal("garbage from before the pin survived collection")
	}
}

// TestEpochPinUnpinConcurrent hammers pin/unpin/retire from many
// goroutines under the race detector: every retired closure must run
// exactly once, and the domain must end with an empty limbo.
func TestEpochPinUnpinConcurrent(t *testing.T) {
	var d epochDomain
	const workers, rounds = 8, 400

	var mu sync.Mutex
	runs := make(map[int]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s := d.pin()
				d.unpin(s)
				id := w*rounds + i
				d.retire(func() {
					mu.Lock()
					runs[id]++
					mu.Unlock()
				})
			}
		}()
	}
	wg.Wait()
	d.collect()
	if d.pending() != 0 {
		t.Fatalf("limbo holds %d entries after all readers left, want 0", d.pending())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(runs) != workers*rounds {
		t.Fatalf("%d closures ran, want %d", len(runs), workers*rounds)
	}
	for id, n := range runs {
		if n != 1 {
			t.Fatalf("closure %d ran %d times, want once", id, n)
		}
	}
}

// TestEpochReclaimsThroughServing drives the whole pipeline through the
// public API: sustained RCU writes churn snapshots, and the domain must
// both reclaim retired buffers (the pools are fed) and never free one
// under an active reader — the latter checked structurally by readers
// asserting their view stays coherent while merges run.
func TestEpochReclaimsThroughServing(t *testing.T) {
	s, err := New(sortedRecs(2048, 3), Config{Shards: 2, Mode: LockRCU, DeltaCap: 32}, testBuilders())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	recs := s.SearchRange(0, core.Key(1<<63))
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := recs[(i*31)%len(recs)].Key
				if _, ok := s.Get(k); !ok {
					t.Errorf("preloaded key %d vanished mid-merge", k)
					return
				}
			}
		}()
	}
	for i := 0; i < 4000; i++ {
		s.Insert(recs[i%len(recs)].Key, core.Value(i))
	}
	s.WaitMerges()
	close(stop)
	readers.Wait()

	if s.EpochReclaims() == 0 {
		t.Fatal("no epoch reclaims despite sustained merge churn")
	}
}
