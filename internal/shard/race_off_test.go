//go:build !race

package shard

// raceEnabled reports whether the race detector is compiled in; see
// race_on_test.go for why the allocation pins skip under -race.
const raceEnabled = false
