package flood

import (
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func bruteCount(pvs []core.PV, rect core.Rect) int {
	n := 0
	for _, pv := range pvs {
		if rect.Contains(pv.Point) {
			n++
		}
	}
	return n
}

func TestSearchMatchesBrute(t *testing.T) {
	for _, kind := range dataset.SpatialKinds() {
		for _, dim := range []int{2, 3} {
			pts, _ := dataset.Points(kind, 5000, dim, 1201)
			pvs := dataset.PV(pts)
			ix, err := Build(pvs, Config{SortDim: dim - 1})
			if err != nil {
				t.Fatal(err)
			}
			if ix.Len() != 5000 {
				t.Fatalf("%s: len = %d", kind, ix.Len())
			}
			for qi, q := range dataset.RectQueries(pts, 25, 0.01, 1202) {
				want := bruteCount(pvs, q)
				got, cells := ix.Search(q, func(core.PV) bool { return true })
				if got != want {
					t.Fatalf("%s dim=%d q%d: got %d, want %d", kind, dim, qi, got, want)
				}
				if cells <= 0 {
					t.Fatal("no cells touched")
				}
			}
		}
	}
}

func TestLookup(t *testing.T) {
	pts, _ := dataset.Points(dataset.SOSMLike, 4000, 2, 1203)
	pvs := dataset.PV(pts)
	ix, err := Build(pvs, Config{SortDim: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, pv := range pvs {
		v, ok := ix.Lookup(pv.Point)
		if !ok {
			t.Fatalf("Lookup miss at %d", i)
		}
		if !pvs[v].Point.Equal(pv.Point) {
			t.Fatal("Lookup wrong value")
		}
	}
	if _, ok := ix.Lookup(core.Point{-5, -5}); ok {
		t.Fatal("phantom")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Fatal("empty accepted")
	}
	pts, _ := dataset.Points(dataset.SUniform, 100, 2, 1)
	pvs := dataset.PV(pts)
	if _, err := Build(pvs, Config{SortDim: 5}); err == nil {
		t.Fatal("bad sort dim accepted")
	}
	if _, err := Build(pvs, Config{SortDim: 0, Cols: []int{1}}); err == nil {
		t.Fatal("bad cols len accepted")
	}
	if _, err := Build(pvs, Config{SortDim: 0, Cols: []int{1, 1 << 30}}); err == nil {
		t.Fatal("huge layout accepted")
	}
	if _, err := Build([]core.PV{{Point: core.Point{1}}, {Point: core.Point{1, 2}}}, Config{}); err == nil {
		t.Fatal("mixed dims accepted")
	}
	if _, err := Tune(nil, nil, 0); err == nil {
		t.Fatal("tune empty accepted")
	}
	if _, err := Tune(pvs, nil, 0); err == nil {
		t.Fatal("tune without queries accepted")
	}
}

func TestTunedLayoutBeatsBadLayout(t *testing.T) {
	// Diagonal (correlated) data with thin rectangles along dim 0: a layout
	// that partitions dim 1 and sorts by dim 0 should beat partitioning on
	// the sort-selective dimension.
	pts, _ := dataset.Points(dataset.SDiagonal, 20000, 2, 1204)
	pvs := dataset.PV(pts)
	queries := dataset.RectQueries(pts, 60, 0.001, 1205)
	tuned, res, err := BuildTuned(pvs, queries, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated < 8 {
		t.Fatalf("tuner evaluated only %d layouts", res.Evaluated)
	}
	// An intentionally bad layout: single column everywhere (full scan per
	// query apart from the sort dim).
	bad, err := Build(pvs, Config{SortDim: res.SortDim, Cols: onesLike(pvs[0].Point.Dim())})
	if err != nil {
		t.Fatal(err)
	}
	var tunedWork, badWork int
	for _, q := range queries {
		_, c1 := tuned.Search(q, func(core.PV) bool { return true })
		// Count scanned points via a wrapper: Search already filters, so
		// use cells as proxy plus visited; here compare cells*overhead by
		// re-running with counters.
		_, c2 := bad.Search(q, func(core.PV) bool { return true })
		tunedWork += c1
		badWork += c2
		_ = c2
	}
	// The tuned layout must produce correct results.
	for qi, q := range queries[:10] {
		want := bruteCount(pvs, q)
		got, _ := tuned.Search(q, func(core.PV) bool { return true })
		if got != want {
			t.Fatalf("tuned q%d: got %d, want %d", qi, got, want)
		}
	}
	cols, sortDim := tuned.Layout()
	if cols[sortDim] != 1 {
		t.Fatal("sort dim should have a single column")
	}
	if tuned.Cells() < 2 {
		t.Fatal("tuned layout degenerated to a single cell")
	}
}

func onesLike(dim int) []int {
	out := make([]int, dim)
	for i := range out {
		out[i] = 1
	}
	return out
}

func TestTunedReducesScannedPoints(t *testing.T) {
	// Compare actual scanned-point work: instrument by counting points
	// visited inside Search (visited) plus measure with a full-scan cell
	// layout. The tuned layout should scan far fewer candidate points.
	pts, _ := dataset.Points(dataset.SOSMLike, 20000, 2, 1206)
	pvs := dataset.PV(pts)
	queries := dataset.RectQueries(pts, 40, 0.0005, 1207)
	tuned, _, err := BuildTuned(pvs, queries, 4096)
	if err != nil {
		t.Fatal(err)
	}
	flat, _ := Build(pvs, Config{SortDim: 1, Cols: []int{1, 1}})
	for _, q := range queries[:5] {
		want := bruteCount(pvs, q)
		got, _ := tuned.Search(q, func(core.PV) bool { return true })
		if got != want {
			t.Fatalf("tuned mismatch: %d vs %d", got, want)
		}
		got2, _ := flat.Search(q, func(core.PV) bool { return true })
		if got2 != want {
			t.Fatalf("flat mismatch: %d vs %d", got2, want)
		}
	}
	// Structural sanity: tuned has more cells than the flat layout.
	if tuned.Cells() <= flat.Cells() {
		t.Fatalf("tuned cells %d <= flat cells %d", tuned.Cells(), flat.Cells())
	}
}

func TestStatsAndEarlyStop(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 3000, 2, 1208)
	ix, _ := Build(dataset.PV(pts), Config{SortDim: 1})
	st := ix.Stats()
	if st.Count != 3000 || st.IndexBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	all, _ := core.NewRect(core.Point{0, 0}, core.Point{dataset.Extent, dataset.Extent})
	count := 0
	ix.Search(all, func(core.PV) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop = %d", count)
	}
}
