// Package flood implements Flood (Nathan, Ding, Alizadeh, Kraska:
// "Learning Multi-dimensional Indexes", SIGMOD 2020): a native-space
// multi-dimensional index that *learns its layout*. All dimensions but one
// are partitioned into equal-depth columns using per-dimension CDF models;
// the remaining "sort dimension" orders points within each grid cell. The
// number of columns per dimension and the choice of sort dimension are
// tuned against a sample workload with a cost model — that workload-driven
// layout search is the system's contribution (Approach 4, native space).
package flood

import (
	"fmt"
	"math"
	"sort"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/mlmodel"
)

// Config parameterizes a build.
type Config struct {
	// SortDim is the dimension cells are sorted by.
	SortDim int
	// Cols[d] is the number of columns in dimension d (ignored for
	// SortDim). Values < 1 are raised to 1.
	Cols []int
	// CDFSamples bounds the per-dimension CDF model size (0 -> 256).
	CDFSamples int
}

// Index is a Flood index.
type Index struct {
	cfg     Config
	dim     int
	cdfs    []*mlmodel.CDF // per dimension (only grid dims used)
	cols    []int          // columns per dimension (1 for sort dim)
	offsets []int32        // cell -> start in pts; len = cells+1
	pts     []core.PV      // grouped by cell, sorted by sort dim inside
	n       int
}

// Build constructs a Flood index with an explicit layout.
func Build(pvs []core.PV, cfg Config) (*Index, error) {
	if len(pvs) == 0 {
		return nil, fmt.Errorf("flood: empty input")
	}
	dim := pvs[0].Point.Dim()
	for i := range pvs {
		if pvs[i].Point.Dim() != dim {
			return nil, fmt.Errorf("flood: point %d dim %d, want %d", i, pvs[i].Point.Dim(), dim)
		}
	}
	if cfg.SortDim < 0 || cfg.SortDim >= dim {
		return nil, fmt.Errorf("flood: sort dim %d out of range [0,%d)", cfg.SortDim, dim)
	}
	if cfg.CDFSamples <= 0 {
		cfg.CDFSamples = 256
	}
	if len(cfg.Cols) == 0 {
		cfg.Cols = make([]int, dim)
		per := int(math.Pow(float64(len(pvs))/64, 1/math.Max(1, float64(dim-1))))
		for d := range cfg.Cols {
			cfg.Cols[d] = per
		}
	}
	if len(cfg.Cols) != dim {
		return nil, fmt.Errorf("flood: cols len %d, want %d", len(cfg.Cols), dim)
	}
	ix := &Index{cfg: cfg, dim: dim, n: len(pvs)}
	ix.cols = make([]int, dim)
	totalCells := 1
	for d := 0; d < dim; d++ {
		c := cfg.Cols[d]
		if c < 1 {
			c = 1
		}
		if d == cfg.SortDim {
			c = 1
		}
		ix.cols[d] = c
		if totalCells > (1<<26)/c {
			return nil, fmt.Errorf("flood: layout has too many cells")
		}
		totalCells *= c
	}
	// Per-dimension CDFs from sorted coordinate samples.
	ix.cdfs = make([]*mlmodel.CDF, dim)
	coord := make([]float64, len(pvs))
	for d := 0; d < dim; d++ {
		if ix.cols[d] == 1 {
			continue
		}
		for i, pv := range pvs {
			coord[i] = pv.Point[d]
		}
		sort.Float64s(coord)
		ix.cdfs[d] = mlmodel.NewCDF(coord, cfg.CDFSamples)
	}
	// Bucket points into cells.
	cellOf := make([]int32, len(pvs))
	counts := make([]int32, totalCells)
	for i, pv := range pvs {
		c := ix.cell(pv.Point)
		cellOf[i] = int32(c)
		counts[c]++
	}
	ix.offsets = make([]int32, totalCells+1)
	for c := 0; c < totalCells; c++ {
		ix.offsets[c+1] = ix.offsets[c] + counts[c]
	}
	ix.pts = make([]core.PV, len(pvs))
	cursor := make([]int32, totalCells)
	copy(cursor, ix.offsets[:totalCells])
	for i, pv := range pvs {
		c := cellOf[i]
		ix.pts[cursor[c]] = pv
		cursor[c]++
	}
	// Sort each cell by the sort dimension.
	s := cfg.SortDim
	for c := 0; c < totalCells; c++ {
		run := ix.pts[ix.offsets[c]:ix.offsets[c+1]]
		sort.Slice(run, func(i, j int) bool { return run[i].Point[s] < run[j].Point[s] })
	}
	return ix, nil
}

// column maps coordinate v in dimension d to its column index.
func (ix *Index) column(d int, v float64) int {
	if ix.cols[d] == 1 {
		return 0
	}
	c := int(ix.cdfs[d].Predict(v) * float64(ix.cols[d]))
	if c >= ix.cols[d] {
		c = ix.cols[d] - 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// cell returns the flattened cell index of p.
func (ix *Index) cell(p core.Point) int {
	c := 0
	for d := 0; d < ix.dim; d++ {
		c = c*ix.cols[d] + ix.column(d, p[d])
	}
	return c
}

// Len returns the number of points.
func (ix *Index) Len() int { return ix.n }

// Layout returns the columns-per-dimension vector and the sort dimension.
func (ix *Index) Layout() ([]int, int) {
	return append([]int(nil), ix.cols...), ix.cfg.SortDim
}

// Cells returns the total number of grid cells.
func (ix *Index) Cells() int { return len(ix.offsets) - 1 }

// Lookup returns the value of the point equal to p.
func (ix *Index) Lookup(p core.Point) (core.Value, bool) {
	if p.Dim() != ix.dim {
		return 0, false
	}
	c := ix.cell(p)
	run := ix.pts[ix.offsets[c]:ix.offsets[c+1]]
	s := ix.cfg.SortDim
	i := sort.Search(len(run), func(i int) bool { return run[i].Point[s] >= p[s] })
	for ; i < len(run) && run[i].Point[s] == p[s]; i++ {
		if run[i].Point.Equal(p) {
			return run[i].Value, true
		}
	}
	return 0, false
}

// Search calls fn for every point in rect; fn returning false stops.
// Returns points visited and cells touched.
func (ix *Index) Search(rect core.Rect, fn func(core.PV) bool) (visited, cells int) {
	if rect.Dim() != ix.dim {
		return 0, 0
	}
	lo := make([]int, ix.dim)
	hi := make([]int, ix.dim)
	for d := 0; d < ix.dim; d++ {
		lo[d] = ix.column(d, rect.Min[d])
		hi[d] = ix.column(d, rect.Max[d])
	}
	s := ix.cfg.SortDim
	idx := make([]int, ix.dim)
	copy(idx, lo)
	for {
		flat := 0
		for d := 0; d < ix.dim; d++ {
			flat = flat*ix.cols[d] + idx[d]
		}
		cells++
		run := ix.pts[ix.offsets[flat]:ix.offsets[flat+1]]
		i := sort.Search(len(run), func(i int) bool { return run[i].Point[s] >= rect.Min[s] })
		for ; i < len(run) && run[i].Point[s] <= rect.Max[s]; i++ {
			if rect.Contains(run[i].Point) {
				visited++
				if !fn(run[i]) {
					return visited, cells
				}
			}
		}
		// Odometer over grid dims.
		d := ix.dim - 1
		for d >= 0 {
			if d == s {
				d--
				continue
			}
			idx[d]++
			if idx[d] <= hi[d] {
				break
			}
			idx[d] = lo[d]
			d--
		}
		if d < 0 {
			break
		}
	}
	return visited, cells
}

// Stats reports structure statistics.
func (ix *Index) Stats() core.Stats {
	cdfBytes := 0
	for _, c := range ix.cdfs {
		if c != nil {
			cdfBytes += c.Bytes()
		}
	}
	return core.Stats{
		Name:       "flood",
		Count:      ix.n,
		IndexBytes: 4*len(ix.offsets) + cdfBytes,
		DataBytes:  ix.n * (8*ix.dim + 8),
		Height:     1,
		Models:     ix.dim,
	}
}

// ---------------------------------------------------------------------------
// Layout tuning (the "learning" in Flood)
// ---------------------------------------------------------------------------

// TuneResult records the tuning outcome.
type TuneResult struct {
	Cols    []int
	SortDim int
	Cost    float64
	// Evaluated is the number of candidate layouts scored.
	Evaluated int
}

// cellCost and pointCost weight the cost model: touching a cell costs a
// binary search plus bookkeeping; scanning a point costs a comparison.
const (
	cellCost  = 24.0
	pointCost = 1.0
)

// Tune searches layouts against a sample workload and returns the best
// (columns vector, sort dimension) under the cost model. maxCells bounds
// layout size (0 selects n/8).
func Tune(pvs []core.PV, queries []core.Rect, maxCells int) (TuneResult, error) {
	if len(pvs) == 0 {
		return TuneResult{}, fmt.Errorf("flood: empty input")
	}
	if len(queries) == 0 {
		return TuneResult{}, fmt.Errorf("flood: tuning requires sample queries")
	}
	dim := pvs[0].Point.Dim()
	if maxCells <= 0 {
		maxCells = len(pvs) / 8
		if maxCells < 1 {
			maxCells = 1
		}
	}
	// Per-dim CDFs once.
	cdfs := make([]*mlmodel.CDF, dim)
	coord := make([]float64, len(pvs))
	for d := 0; d < dim; d++ {
		for i, pv := range pvs {
			coord[i] = pv.Point[d]
		}
		sort.Float64s(coord)
		cdfs[d] = mlmodel.NewCDF(coord, 256)
	}
	// Per-query per-dim selectivities.
	sel := make([][]float64, len(queries))
	for qi, q := range queries {
		sel[qi] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			f := cdfs[d].Predict(q.Max[d]) - cdfs[d].Predict(q.Min[d])
			if f < 1e-6 {
				f = 1e-6
			}
			sel[qi][d] = f
		}
	}
	n := float64(len(pvs))
	ladder := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	best := TuneResult{Cost: math.Inf(1)}
	cols := make([]int, dim)
	var enumerate func(d, cells int, sortDim int)
	var evaluated int
	evalLayout := func(sortDim int) {
		var cost float64
		for qi := range queries {
			cellsTouched := 1.0
			scanFrac := 1.0
			for d := 0; d < dim; d++ {
				if d == sortDim {
					continue
				}
				span := math.Ceil(sel[qi][d]*float64(cols[d])) + 1
				if span > float64(cols[d]) {
					span = float64(cols[d])
				}
				cellsTouched *= span
				scanFrac *= span / float64(cols[d])
			}
			// Within touched cells the sort-dim binary search limits the
			// scan to the query's sort-dim fraction.
			scanned := n * scanFrac * sel[qi][sortDim]
			cost += cellCost*cellsTouched + pointCost*scanned
		}
		evaluated++
		if cost < best.Cost {
			best.Cost = cost
			best.SortDim = sortDim
			best.Cols = append([]int(nil), cols...)
			best.Cols[sortDim] = 1
		}
	}
	enumerate = func(d, cells, sortDim int) {
		if evaluated > 100000 {
			return
		}
		if d == dim {
			evalLayout(sortDim)
			return
		}
		if d == sortDim {
			cols[d] = 1
			enumerate(d+1, cells, sortDim)
			return
		}
		for _, c := range ladder {
			if cells*c > maxCells {
				break
			}
			cols[d] = c
			enumerate(d+1, cells*c, sortDim)
		}
	}
	for s := 0; s < dim; s++ {
		enumerate(0, 1, s)
	}
	best.Evaluated = evaluated
	return best, nil
}

// BuildTuned tunes the layout on the sample workload and builds the index.
func BuildTuned(pvs []core.PV, queries []core.Rect, maxCells int) (*Index, TuneResult, error) {
	res, err := Tune(pvs, queries, maxCells)
	if err != nil {
		return nil, res, err
	}
	ix, err := Build(pvs, Config{SortDim: res.SortDim, Cols: res.Cols})
	return ix, res, err
}
