// Package mlmodel implements the small machine-learning models that learned
// index structures are built from: linear regression (closed form),
// polynomial regression (normal equations), logistic regression (SGD), a
// tiny multilayer perceptron, and cumulative-distribution-function models.
//
// The surveyed learned indexes deliberately avoid heavyweight models (paper
// §6.2): model evaluation sits on the lookup critical path, so everything
// here is a handful of multiply-adds. All models map a uint64 key (converted
// to float64) to a predicted position or probability.
package mlmodel

import (
	"errors"
	"math"
)

// Model predicts a float64 output (usually a position or a CDF value in
// [0,1]) for a float64 input (usually a key).
type Model interface {
	// Predict returns the model output for input x.
	Predict(x float64) float64
	// Bytes returns the approximate in-memory size of the model.
	Bytes() int
}

// Trainable is a Model that can be fit to (x, y) pairs.
type Trainable interface {
	Model
	// Fit trains the model on parallel slices xs and ys.
	Fit(xs, ys []float64) error
}

var (
	// ErrEmptyTrainingSet is returned by Fit when no samples are given.
	ErrEmptyTrainingSet = errors.New("mlmodel: empty training set")
	// ErrBadShape is returned when xs and ys differ in length.
	ErrBadShape = errors.New("mlmodel: xs and ys length mismatch")
	// ErrSingular is returned when a least-squares system is singular.
	ErrSingular = errors.New("mlmodel: singular system")
)

// ---------------------------------------------------------------------------
// Linear regression
// ---------------------------------------------------------------------------

// Linear is y = Slope*x + Intercept, fit by ordinary least squares in one
// pass. It is the workhorse model of RMI stage-2, ALEX nodes, LIPP nodes and
// PGM segments.
type Linear struct {
	Slope, Intercept float64
}

// Predict returns Slope*x + Intercept.
func (m *Linear) Predict(x float64) float64 { return m.Slope*x + m.Intercept }

// Bytes returns the model footprint.
func (m *Linear) Bytes() int { return 16 }

// Fit computes the least-squares line through (xs, ys). With a single
// sample the model becomes the constant ys[0]. Inputs are shifted by their
// means for numerical stability with large uint64-derived keys.
func (m *Linear) Fit(xs, ys []float64) error {
	if len(xs) != len(ys) {
		return ErrBadShape
	}
	n := len(xs)
	if n == 0 {
		return ErrEmptyTrainingSet
	}
	if n == 1 {
		m.Slope, m.Intercept = 0, ys[0]
		return nil
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		// All x identical: constant model.
		m.Slope, m.Intercept = 0, my
		return nil
	}
	m.Slope = sxy / sxx
	m.Intercept = my - m.Slope*mx
	return nil
}

// FitEndpoints fits the line through the first and last samples; cheaper
// than least squares and monotone-preserving on sorted data. Used by
// spline-style models.
func (m *Linear) FitEndpoints(xs, ys []float64) error {
	n := len(xs)
	if n != len(ys) {
		return ErrBadShape
	}
	if n == 0 {
		return ErrEmptyTrainingSet
	}
	if n == 1 || xs[n-1] == xs[0] {
		m.Slope, m.Intercept = 0, ys[0]
		return nil
	}
	m.Slope = (ys[n-1] - ys[0]) / (xs[n-1] - xs[0])
	m.Intercept = ys[0] - m.Slope*xs[0]
	return nil
}

// ---------------------------------------------------------------------------
// Polynomial regression
// ---------------------------------------------------------------------------

// Polynomial is y = sum_i Coef[i] * x^i, fit by normal equations. Degree 2-3
// polynomials appear in PolyFit-style indexes and as RMI root models.
type Polynomial struct {
	Coef []float64 // Coef[i] multiplies x^i
	// shift/scale standardize inputs before exponentiation to keep the
	// normal equations well-conditioned on key-scale inputs.
	shift, scale float64
}

// NewPolynomial returns an untrained polynomial of the given degree (>= 1).
func NewPolynomial(degree int) *Polynomial {
	return &Polynomial{Coef: make([]float64, degree+1), scale: 1}
}

// Predict evaluates the polynomial with Horner's rule.
func (m *Polynomial) Predict(x float64) float64 {
	x = (x - m.shift) / m.scale
	var y float64
	for i := len(m.Coef) - 1; i >= 0; i-- {
		y = y*x + m.Coef[i]
	}
	return y
}

// Bytes returns the model footprint.
func (m *Polynomial) Bytes() int { return 16 + 8*len(m.Coef) }

// Fit solves the least-squares system via normal equations with Gaussian
// elimination and partial pivoting.
func (m *Polynomial) Fit(xs, ys []float64) error {
	if len(xs) != len(ys) {
		return ErrBadShape
	}
	if len(xs) == 0 {
		return ErrEmptyTrainingSet
	}
	d := len(m.Coef)
	// Standardize x to [-1, 1] over the observed range.
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	m.shift = (lo + hi) / 2
	m.scale = (hi - lo) / 2
	if m.scale == 0 {
		m.scale = 1
	}
	// Build normal equations A c = b with A[i][j] = sum x^(i+j).
	pow := make([]float64, 2*d-1)
	b := make([]float64, d)
	xp := make([]float64, d)
	for k := range xs {
		x := (xs[k] - m.shift) / m.scale
		p := 1.0
		for i := 0; i < d; i++ {
			xp[i] = p
			p *= x
		}
		p = 1.0
		for i := 0; i < 2*d-1; i++ {
			pow[i] += p
			p *= x
		}
		for i := 0; i < d; i++ {
			b[i] += xp[i] * ys[k]
		}
	}
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			a[i][j] = pow[i+j]
		}
	}
	c, err := solveGauss(a, b)
	if err != nil {
		// Fall back to the best linear fit rather than failing the build.
		var lin Linear
		if lerr := lin.Fit(xs, ys); lerr != nil {
			return lerr
		}
		for i := range m.Coef {
			m.Coef[i] = 0
		}
		m.Coef[0] = lin.Intercept + lin.Slope*m.shift
		if len(m.Coef) > 1 {
			m.Coef[1] = lin.Slope * m.scale
		}
		return nil
	}
	copy(m.Coef, c)
	return nil
}

// solveGauss solves a*x = b with partial pivoting, destroying a and b.
func solveGauss(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

// ---------------------------------------------------------------------------
// Logistic regression
// ---------------------------------------------------------------------------

// Logistic is a binary classifier p(y=1|x) = sigmoid(w*phi(x) + b) over a
// small fixed feature expansion of the key. It backs the learned Bloom
// filter (classifier + backup filter architecture of Kraska et al.).
type Logistic struct {
	W    []float64
	B    float64
	Feat FeatureFunc
	// Training hyperparameters; zero values select sensible defaults.
	LearningRate float64
	Epochs       int
	L2           float64
}

// FeatureFunc expands an input into a feature vector. Implementations must
// always return the same length.
type FeatureFunc func(x float64, out []float64)

// KeyFeatures is the default 8-dimensional expansion used for key-valued
// inputs: normalized value, low/mid bit buckets and smooth transforms. The
// input is expected pre-normalized to roughly [0, 1].
func KeyFeatures(x float64, out []float64) {
	out[0] = x
	out[1] = x * x
	out[2] = math.Sqrt(math.Abs(x))
	out[3] = math.Sin(2 * math.Pi * x)
	out[4] = math.Cos(2 * math.Pi * x)
	out[5] = math.Sin(32 * math.Pi * x)
	out[6] = math.Mod(x*64, 1)
	out[7] = 1 // bias-like constant feature
}

// KeyFeatureDim is the feature dimension of KeyFeatures.
const KeyFeatureDim = 8

// NewLogistic returns a logistic model over dim features.
func NewLogistic(dim int, feat FeatureFunc) *Logistic {
	return &Logistic{W: make([]float64, dim), Feat: feat}
}

// Sigmoid is the standard logistic function.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Predict returns p(y=1|x).
func (m *Logistic) Predict(x float64) float64 {
	buf := make([]float64, len(m.W))
	m.Feat(x, buf)
	z := m.B
	for i, w := range m.W {
		z += w * buf[i]
	}
	return Sigmoid(z)
}

// Bytes returns the model footprint.
func (m *Logistic) Bytes() int { return 8*len(m.W) + 8 }

// FitLabels trains with SGD on inputs xs with binary labels (true = 1).
func (m *Logistic) FitLabels(xs []float64, labels []bool) error {
	if len(xs) != len(labels) {
		return ErrBadShape
	}
	if len(xs) == 0 {
		return ErrEmptyTrainingSet
	}
	lr := m.LearningRate
	if lr == 0 {
		lr = 0.5
	}
	epochs := m.Epochs
	if epochs == 0 {
		epochs = 20
	}
	buf := make([]float64, len(m.W))
	// Deterministic shuffled order via an LCG so training is reproducible.
	n := len(xs)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	state := uint64(0x9e3779b97f4a7c15)
	next := func(bound int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(bound))
	}
	for e := 0; e < epochs; e++ {
		for i := n - 1; i > 0; i-- {
			j := next(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		step := lr / (1 + 0.1*float64(e))
		for _, idx := range order {
			m.Feat(xs[idx], buf)
			z := m.B
			for i, w := range m.W {
				z += w * buf[i]
			}
			p := Sigmoid(z)
			y := 0.0
			if labels[idx] {
				y = 1.0
			}
			g := p - y
			for i := range m.W {
				m.W[i] -= step * (g*buf[i] + m.L2*m.W[i])
			}
			m.B -= step * g
		}
	}
	return nil
}

// Fit trains on (xs, ys) where ys are 0/1 targets, satisfying Trainable.
func (m *Logistic) Fit(xs, ys []float64) error {
	labels := make([]bool, len(ys))
	for i, y := range ys {
		labels[i] = y >= 0.5
	}
	return m.FitLabels(xs, labels)
}

// ---------------------------------------------------------------------------
// Tiny MLP
// ---------------------------------------------------------------------------

// MLP is a one-hidden-layer perceptron with ReLU activation, the "NN root
// model" configuration of the original RMI paper. Input and output are
// scalar; the hidden width is configurable.
type MLP struct {
	W1, B1 []float64 // hidden weights/biases
	W2     []float64 // output weights
	B2     float64
	// Training hyperparameters; zero values select defaults.
	LearningRate float64
	Epochs       int
	// Input/output standardization learned during Fit.
	xShift, xScale float64
	yShift, yScale float64
}

// NewMLP returns an MLP with the given hidden width.
func NewMLP(hidden int) *MLP {
	m := &MLP{
		W1: make([]float64, hidden),
		B1: make([]float64, hidden),
		W2: make([]float64, hidden),
	}
	// Deterministic small init spread over [-0.5, 0.5].
	state := uint64(88172645463325252)
	rnd := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1000)/1000 - 0.5
	}
	for i := 0; i < hidden; i++ {
		m.W1[i] = rnd()
		m.B1[i] = rnd() * 0.1
		m.W2[i] = rnd()
	}
	m.xScale, m.yScale = 1, 1
	return m
}

// Predict runs the forward pass.
func (m *MLP) Predict(x float64) float64 {
	x = (x - m.xShift) / m.xScale
	var y float64
	for i := range m.W1 {
		h := m.W1[i]*x + m.B1[i]
		if h > 0 {
			y += m.W2[i] * h
		}
	}
	y += m.B2
	return y*m.yScale + m.yShift
}

// Bytes returns the model footprint.
func (m *MLP) Bytes() int { return 24*len(m.W1) + 8*5 }

// Fit trains with full-batch gradient descent on standardized data.
func (m *MLP) Fit(xs, ys []float64) error {
	if len(xs) != len(ys) {
		return ErrBadShape
	}
	n := len(xs)
	if n == 0 {
		return ErrEmptyTrainingSet
	}
	// Standardize.
	m.xShift, m.xScale = meanScale(xs)
	m.yShift, m.yScale = meanScale(ys)
	lr := m.LearningRate
	if lr == 0 {
		lr = 0.05
	}
	epochs := m.Epochs
	if epochs == 0 {
		epochs = 200
	}
	h := len(m.W1)
	gw1 := make([]float64, h)
	gb1 := make([]float64, h)
	gw2 := make([]float64, h)
	inv := 1 / float64(n)
	// Cap per-epoch cost: sample at most 4096 points per epoch.
	stride := 1
	if n > 4096 {
		stride = n / 4096
	}
	for e := 0; e < epochs; e++ {
		for i := range gw1 {
			gw1[i], gb1[i], gw2[i] = 0, 0, 0
		}
		var gb2 float64
		for idx := 0; idx < n; idx += stride {
			x := (xs[idx] - m.xShift) / m.xScale
			yt := (ys[idx] - m.yShift) / m.yScale
			var y float64
			for i := 0; i < h; i++ {
				a := m.W1[i]*x + m.B1[i]
				if a > 0 {
					y += m.W2[i] * a
				}
			}
			y += m.B2
			g := 2 * (y - yt) * inv * float64(stride)
			for i := 0; i < h; i++ {
				a := m.W1[i]*x + m.B1[i]
				if a > 0 {
					gw2[i] += g * a
					gw1[i] += g * m.W2[i] * x
					gb1[i] += g * m.W2[i]
				}
			}
			gb2 += g
		}
		for i := 0; i < h; i++ {
			m.W1[i] -= lr * gw1[i]
			m.B1[i] -= lr * gb1[i]
			m.W2[i] -= lr * gw2[i]
		}
		m.B2 -= lr * gb2
	}
	return nil
}

func meanScale(v []float64) (shift, scale float64) {
	var mn, mx = v[0], v[0]
	for _, x := range v {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	shift = (mn + mx) / 2
	scale = (mx - mn) / 2
	if scale == 0 {
		scale = 1
	}
	return shift, scale
}

// ---------------------------------------------------------------------------
// CDF models over sorted keys
// ---------------------------------------------------------------------------

// CDF approximates the empirical cumulative distribution of a sorted key
// set with an equi-depth sample: Predict maps a key to a fraction in [0,1].
// It backs per-dimension partitioning in Flood and LISA.
type CDF struct {
	samples []float64 // sorted key sample; samples[i] ≈ quantile i/(len-1)
}

// NewCDF builds a CDF model from sorted keys using at most maxSamples
// quantile points (minimum 2).
func NewCDF(sorted []float64, maxSamples int) *CDF {
	if maxSamples < 2 {
		maxSamples = 2
	}
	n := len(sorted)
	if n == 0 {
		return &CDF{samples: []float64{0, 1}}
	}
	if n == 1 {
		return &CDF{samples: []float64{sorted[0], sorted[0] + 1}}
	}
	if maxSamples > n {
		maxSamples = n
	}
	s := make([]float64, maxSamples)
	for i := 0; i < maxSamples; i++ {
		idx := i * (n - 1) / (maxSamples - 1)
		s[i] = sorted[idx]
	}
	return &CDF{samples: s}
}

// Predict returns the approximate CDF value of x in [0,1], interpolating
// linearly between quantile samples. It is monotone non-decreasing in x.
func (c *CDF) Predict(x float64) float64 {
	s := c.samples
	m := len(s)
	if x <= s[0] {
		return 0
	}
	if x >= s[m-1] {
		return 1
	}
	// Binary search for the bracketing segment.
	lo, hi := 0, m-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	den := s[hi] - s[lo]
	frac := 0.0
	if den > 0 {
		frac = (x - s[lo]) / den
	}
	return (float64(lo) + frac) / float64(m-1)
}

// Bytes returns the model footprint.
func (c *CDF) Bytes() int { return 8 * len(c.samples) }

// Quantile returns the approximate key at CDF value q in [0,1] (the inverse
// of Predict).
func (c *CDF) Quantile(q float64) float64 {
	s := c.samples
	m := len(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[m-1]
	}
	pos := q * float64(m-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo >= m-1 {
		return s[m-1]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// KeyToFloat converts a uint64 key to float64. Precision loss above 2^53 is
// acceptable for model inputs: the error-bounded search absorbs it.
func KeyToFloat(k uint64) float64 { return float64(k) }
