package mlmodel

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLinearExactFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	var m Linear
	if err := m.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Slope-2) > 1e-9 || math.Abs(m.Intercept-1) > 1e-9 {
		t.Fatalf("fit = %+v", m)
	}
	if p := m.Predict(10); math.Abs(p-21) > 1e-9 {
		t.Fatalf("Predict(10) = %g", p)
	}
}

func TestLinearDegenerate(t *testing.T) {
	var m Linear
	if err := m.Fit(nil, nil); err != ErrEmptyTrainingSet {
		t.Fatalf("empty fit err = %v", err)
	}
	if err := m.Fit([]float64{1}, []float64{2, 3}); err != ErrBadShape {
		t.Fatalf("shape err = %v", err)
	}
	if err := m.Fit([]float64{5}, []float64{7}); err != nil {
		t.Fatal(err)
	}
	if m.Predict(123) != 7 {
		t.Fatal("single-sample fit should be constant")
	}
	// All-identical x.
	if err := m.Fit([]float64{2, 2, 2}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if m.Slope != 0 || m.Predict(0) != 2 {
		t.Fatalf("identical-x fit = %+v", m)
	}
}

func TestLinearEndpoints(t *testing.T) {
	var m Linear
	if err := m.FitEndpoints([]float64{0, 5, 10}, []float64{0, 1, 20}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Predict(5)-10) > 1e-9 {
		t.Fatalf("endpoint fit Predict(5) = %g", m.Predict(5))
	}
	if err := m.FitEndpoints(nil, nil); err != ErrEmptyTrainingSet {
		t.Fatal("expected empty error")
	}
	if err := m.FitEndpoints([]float64{3, 3}, []float64{1, 9}); err != nil {
		t.Fatal(err)
	}
	if m.Predict(3) != 1 {
		t.Fatal("degenerate endpoints should be constant")
	}
}

// Property: least squares never has higher squared error than the endpoint
// fit on the same data.
func TestLinearLeastSquaresOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
			ys[i] = 3*xs[i] + r.NormFloat64()*10
		}
		sort.Float64s(xs)
		var ls, ep Linear
		if ls.Fit(xs, ys) != nil || ep.FitEndpoints(xs, ys) != nil {
			return false
		}
		sse := func(m *Linear) float64 {
			var s float64
			for i := range xs {
				d := m.Predict(xs[i]) - ys[i]
				s += d * d
			}
			return s
		}
		return sse(&ls) <= sse(&ep)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestPolynomialQuadratic(t *testing.T) {
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		x := float64(i)
		xs[i] = x
		ys[i] = 2*x*x - 3*x + 1
	}
	m := NewPolynomial(2)
	if err := m.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 10, 25, 49} {
		want := 2*x*x - 3*x + 1
		if got := m.Predict(x); math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("Predict(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestPolynomialDegenerateFallback(t *testing.T) {
	// All-identical x makes the system singular; Fit must fall back to the
	// constant/linear solution instead of erroring.
	m := NewPolynomial(3)
	if err := m.Fit([]float64{5, 5, 5}, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(5); math.Abs(got-2) > 1e-9 {
		t.Fatalf("fallback Predict(5) = %g, want mean 2", got)
	}
	if err := m.Fit(nil, nil); err != ErrEmptyTrainingSet {
		t.Fatal("expected empty error")
	}
}

func TestPolynomialLargeScaleStability(t *testing.T) {
	// Key-scale inputs (1e18) must not blow up the normal equations.
	n := 100
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = 1e18 + float64(i)*1e12
		ys[i] = float64(i)
	}
	m := NewPolynomial(2)
	if err := m.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 13 {
		if got := m.Predict(xs[i]); math.Abs(got-ys[i]) > 0.5 {
			t.Fatalf("Predict(%g) = %g, want %g", xs[i], got, ys[i])
		}
	}
}

func TestLogisticSeparable(t *testing.T) {
	// Keys below 0.5 are negatives, above are positives: linearly separable
	// in feature space.
	var xs []float64
	var labels []bool
	for i := 0; i < 400; i++ {
		x := float64(i) / 400
		xs = append(xs, x)
		labels = append(labels, x >= 0.5)
	}
	m := NewLogistic(KeyFeatureDim, KeyFeatures)
	if err := m.FitLabels(xs, labels); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range xs {
		if (m.Predict(x) >= 0.5) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.95 {
		t.Fatalf("accuracy = %g, want >= 0.95", acc)
	}
}

func TestLogisticErrors(t *testing.T) {
	m := NewLogistic(KeyFeatureDim, KeyFeatures)
	if err := m.FitLabels(nil, nil); err != ErrEmptyTrainingSet {
		t.Fatal("expected empty error")
	}
	if err := m.FitLabels([]float64{1}, []bool{true, false}); err != ErrBadShape {
		t.Fatal("expected shape error")
	}
	if err := m.Fit([]float64{0.1, 0.9}, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("Sigmoid(0) = %g", s)
	}
	if s := Sigmoid(100); s <= 0.999 {
		t.Fatalf("Sigmoid(100) = %g", s)
	}
	if s := Sigmoid(-100); s >= 0.001 {
		t.Fatalf("Sigmoid(-100) = %g", s)
	}
	// Symmetry.
	for _, z := range []float64{0.5, 2, 10, 50} {
		if d := Sigmoid(z) + Sigmoid(-z) - 1; math.Abs(d) > 1e-12 {
			t.Fatalf("sigmoid symmetry broken at %g: %g", z, d)
		}
	}
}

func TestMLPFitsMonotoneCurve(t *testing.T) {
	n := 512
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := float64(i) / float64(n)
		xs[i] = x
		ys[i] = math.Sqrt(x) * 1000 // concave CDF-like curve
	}
	m := NewMLP(16)
	m.Epochs = 1500
	m.LearningRate = 0.1
	if err := m.Fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := 0; i < n; i += 7 {
		d := math.Abs(m.Predict(xs[i]) - ys[i])
		if d > worst {
			worst = d
		}
	}
	// A tiny MLP won't be exact, but must be a usable coarse router:
	// within 15% of the output range.
	if worst > 150 {
		t.Fatalf("worst error = %g, want <= 150", worst)
	}
}

func TestMLPErrors(t *testing.T) {
	m := NewMLP(4)
	if err := m.Fit(nil, nil); err != ErrEmptyTrainingSet {
		t.Fatal("expected empty error")
	}
	if err := m.Fit([]float64{1}, []float64{1, 2}); err != ErrBadShape {
		t.Fatal("expected shape error")
	}
}

func TestCDFMonotoneAndInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]float64, 2000)
	for i := range keys {
		keys[i] = rng.NormFloat64() * 1e6
	}
	sort.Float64s(keys)
	c := NewCDF(keys, 64)
	// Monotone over a sweep.
	prev := -1.0
	for x := keys[0] - 1e5; x <= keys[len(keys)-1]+1e5; x += 5e4 {
		p := c.Predict(x)
		if p < prev-1e-12 {
			t.Fatalf("CDF not monotone at %g: %g < %g", x, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("CDF out of range: %g", p)
		}
		prev = p
	}
	// Quantile inverts Predict approximately on interior points.
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		x := c.Quantile(q)
		if math.Abs(c.Predict(x)-q) > 0.05 {
			t.Fatalf("Quantile(%g) = %g, Predict back = %g", q, x, c.Predict(x))
		}
	}
	if c.Quantile(-1) != keys[0] || c.Quantile(2) != keys[len(keys)-1] {
		t.Fatal("Quantile clamping failed")
	}
}

func TestCDFDegenerate(t *testing.T) {
	c := NewCDF(nil, 10)
	if p := c.Predict(0.5); p < 0 || p > 1 {
		t.Fatalf("empty CDF Predict = %g", p)
	}
	c = NewCDF([]float64{42}, 10)
	if c.Predict(41) != 0 || c.Predict(43) != 1 {
		t.Fatal("single-key CDF endpoints wrong")
	}
	// Heavy duplicates.
	keys := make([]float64, 100)
	for i := 50; i < 100; i++ {
		keys[i] = 1
	}
	c = NewCDF(keys, 8)
	if p := c.Predict(0.5); p < 0.3 || p > 0.8 {
		t.Fatalf("duplicate CDF Predict(0.5) = %g", p)
	}
}

func TestModelBytesPositive(t *testing.T) {
	models := []Model{
		&Linear{}, NewPolynomial(2), NewLogistic(KeyFeatureDim, KeyFeatures),
		NewMLP(4), NewCDF([]float64{1, 2, 3}, 4),
	}
	for _, m := range models {
		if m.Bytes() <= 0 {
			t.Fatalf("%T Bytes() = %d", m, m.Bytes())
		}
	}
}

func TestSolveGaussSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := solveGauss(a, b); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}
