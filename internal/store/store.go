// Package store is the durable storage subsystem of the lix library. It
// persists any mutable index kind with the classic snapshot-plus-log
// shape used by disk-resident DBMS engines ("Updatable Learned Indexes
// Meet Disk-Resident DBMS"): a versioned binary snapshot codec with
// CRC32C-framed sections checkpoints the full record set, an append-only
// write-ahead log with length+CRC record framing and batched group commit
// makes individual mutations durable, and recovery replays the committed
// WAL suffix over the newest valid snapshot, truncating at the first torn
// or corrupt entry instead of failing.
//
// Files live in one directory and carry a generation number:
//
//	snap-<gen>.lix        full checkpoint (meta + records, CRC-framed)
//	wal-<gen>-<seg>.lix   WAL segment <seg> of generation <gen>
//
// A checkpoint atomically rotates to the next generation: new WAL
// segments are created first, the snapshot is written to a temp file,
// fsynced and renamed into place, and only then are the previous
// generation's files deleted. Recovery therefore always finds either the
// old snapshot plus the complete old WAL, or the new snapshot — replaying
// every WAL generation at or after the newest valid snapshot, merged by
// global sequence number, reconstructs the exact committed state for any
// crash point.
package store

import (
	"fmt"
	"hash/crc32"

	"github.com/lix-go/lix/internal/core"
)

// castagnoli is the CRC32C polynomial table shared by the WAL and the
// snapshot codec (iSCSI polynomial, hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when the WAL is fsynced. The zero value is
// SyncAlways: the safest policy is the default.
type SyncPolicy uint8

// The fsync policies.
const (
	// SyncAlways fsyncs before every mutation returns (group commit
	// batches concurrent writers into one fsync).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background flusher on a fixed cadence; a
	// crash may lose the last interval's writes.
	SyncInterval
	// SyncNever leaves flushing to the operating system; a crash may lose
	// anything since the last checkpoint or explicit Sync.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
}

// ParseSyncPolicy parses the String form of a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown sync policy %q (want always, interval or never)", s)
}

// OpKind is the WAL operation discriminator.
type OpKind uint8

// The logged operations. Values are part of the on-disk format.
const (
	OpInsert OpKind = 1
	OpDelete OpKind = 2
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Record is one logged mutation. Seq is the global commit order across
// all WAL segments of a store: per-segment logs are merged by Seq during
// recovery, so records of the same key (which always route to the same
// segment while a generation is live) replay in their original order.
type Record struct {
	Seq uint64
	Op  OpKind
	Key core.Key
	Val core.Value // meaningful for OpInsert only
}

func (r Record) String() string {
	if r.Op == OpInsert {
		return fmt.Sprintf("#%d insert(%d, %d)", r.Seq, r.Key, r.Val)
	}
	return fmt.Sprintf("#%d %s(%d)", r.Seq, r.Op, r.Key)
}

// MutableIndex is the structural index surface the durable layer wraps
// (mirrors the public façade's MutableIndex without importing it).
type MutableIndex interface {
	Get(k core.Key) (core.Value, bool)
	Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int
	Len() int
	Stats() core.Stats
	Insert(k core.Key, v core.Value)
	Delete(k core.Key) bool
}

// Router maps a key to its WAL segment. While a generation is live the
// routing must be stable (the same key always lands in the same segment)
// so that per-key operation order survives the per-segment merge.
type Router func(k core.Key) int

// BuildResult is what a BuildFunc returns: the in-memory index plus the
// WAL segmentation scheme it implies.
type BuildResult struct {
	// Index is the rebuilt in-memory index.
	Index MutableIndex
	// Route maps keys to WAL segments (nil routes everything to segment 0).
	Route Router
	// Segments is the WAL segment count (0 selects 1). The sharded layer
	// uses one segment per shard so group commits proceed in parallel.
	Segments int
	// ConcurrentReads declares the index safe for reads concurrent with
	// writes (the sharded layer, XIndex). When false the durable wrapper
	// serializes reads against writes itself, which requires Segments == 1.
	ConcurrentReads bool
}

// BuildFunc rebuilds the in-memory index during Open/Create. meta is the
// rebuild-parameter map persisted in the newest snapshot, or nil when the
// directory is fresh (the builder then uses its own defaults, which are
// persisted by the first checkpoint). recs is the recovered record set,
// sorted ascending by key.
type BuildFunc func(meta map[string]string, recs []core.KV) (BuildResult, error)
