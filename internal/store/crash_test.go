package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

// Crash-injection suite: every test builds a store, kills it without a
// clean shutdown, damages the files the way a real crash can (torn tail
// at an arbitrary byte offset, flipped bits, missing rename), reopens,
// and checks that recovery restores exactly the committed prefix.

// insertFrame is the on-disk size of one insert record's frame.
const insertFrame = walFrameHdr + insertPayload

// walBodyAt computes, for a WAL holding only insert records, how many
// records survive a cut at byte offset cut — independently of the
// decoder under test.
func committedAt(cut int) int {
	if cut <= walHeaderSize {
		return 0
	}
	return (cut - walHeaderSize) / insertFrame
}

func TestCrashTornTailRandomOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		dir := t.TempDir()
		const n = 200
		d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := d.Put(core.Key(i), core.Value(i*10)); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Crash(); err != nil {
			t.Fatal(err)
		}

		// Kill the tail at a random byte offset, anywhere in the file.
		path := walPath(dir, 1, 0)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cut := rng.Intn(len(data) + 1)
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		want := committedAt(cut)

		d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
		if err != nil {
			t.Fatalf("trial %d cut %d: recovery aborted: %v", trial, cut, err)
		}
		if d2.Len() != want {
			t.Fatalf("trial %d cut %d: recovered %d records, want %d", trial, cut, d2.Len(), want)
		}
		// The committed prefix is intact, in order, with the right values.
		for i := 0; i < want; i++ {
			if v, ok := d2.Get(core.Key(i)); !ok || v != core.Value(i*10) {
				t.Fatalf("trial %d: committed record %d lost (%d,%v)", trial, i, v, ok)
			}
		}
		// Writes after recovery continue from the truncation point.
		if err := d2.Put(core.Key(n+trial), 1); err != nil {
			t.Fatalf("trial %d: post-recovery write: %v", trial, err)
		}
		d2.Close()
	}
}

func TestCrashBitFlipTruncatesNotAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		dir := t.TempDir()
		const n = 150
		d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			d.Put(core.Key(i), core.Value(i))
		}
		d.Crash()

		path := walPath(dir, 1, 0)
		data, _ := os.ReadFile(path)
		// Flip one random bit somewhere after the header.
		pos := walHeaderSize + rng.Intn(len(data)-walHeaderSize)
		data[pos] ^= 1 << uint(rng.Intn(8))
		os.WriteFile(path, data, 0o644)
		want := committedAt(pos)

		d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
		if err != nil {
			t.Fatalf("trial %d flip@%d: recovery aborted: %v", trial, pos, err)
		}
		// Everything strictly before the damaged frame survives; the
		// damaged frame and all after it are truncated.
		if d2.Len() != want {
			t.Fatalf("trial %d flip@%d: recovered %d, want %d", trial, pos, d2.Len(), want)
		}
		d2.Close()
	}
}

func TestCrashMultiSegmentMergedPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		dir := t.TempDir()
		const segs, n = 4, 400
		d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(segs))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			d.Put(core.Key(i), core.Value(i+1))
		}
		d.Crash()

		// Tear each segment independently at a random offset, then compute
		// the expected surviving state: per-segment committed prefixes
		// merged by sequence number.
		type kv struct {
			seq uint64
			val core.Value
		}
		expect := map[core.Key]kv{}
		for seg := 0; seg < segs; seg++ {
			path := walPath(dir, 1, seg)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			cut := rng.Intn(len(data) + 1)
			os.WriteFile(path, data[:cut], 0o644)
			keep := committedAt(cut)
			recs, _ := DecodeRecords(data[walHeaderSize : walHeaderSize+keep*insertFrame])
			for _, r := range recs {
				if prev, ok := expect[r.Key]; !ok || r.Seq > prev.seq {
					expect[r.Key] = kv{seq: r.Seq, val: r.Val}
				}
			}
		}

		d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(segs))
		if err != nil {
			t.Fatalf("trial %d: recovery aborted: %v", trial, err)
		}
		if d2.Len() != len(expect) {
			t.Fatalf("trial %d: recovered %d records, want %d", trial, d2.Len(), len(expect))
		}
		for k, e := range expect {
			if v, ok := d2.Get(k); !ok || v != e.val {
				t.Fatalf("trial %d: key %d: got (%d,%v) want %d", trial, k, v, ok, e.val)
			}
		}
		d2.Close()
	}
}

func TestCrashSyncAlwaysLosesNothing(t *testing.T) {
	dir := t.TempDir()
	const n = 100
	d, err := Open(dir, Config{Fsync: SyncAlways, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := d.Put(core.Key(i), core.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	d.Crash()
	d2, err := Open(dir, Config{Fsync: SyncAlways, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	// Every Put returned after its fsync, so a crash loses nothing.
	if d2.Len() != n {
		t.Fatalf("SyncAlways crash lost records: %d/%d", d2.Len(), n)
	}
}

func TestCrashDuringCheckpointRotation(t *testing.T) {
	// Simulate the two dangerous checkpoint crash points by constructing
	// the directory states a kill would leave behind.
	t.Run("new wal created, snapshot never renamed", func(t *testing.T) {
		dir := t.TempDir()
		d, _ := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
		for i := 0; i < 50; i++ {
			d.Put(core.Key(i), core.Value(i))
		}
		d.Crash()
		// The crash happened right after the gen-2 WAL was created: an
		// empty gen-2 segment exists, no gen-2 snapshot.
		if err := os.WriteFile(walPath(dir, 2, 0), walHeader(2, 0), 0o644); err != nil {
			t.Fatal(err)
		}
		// A stray snapshot temp file may also linger.
		os.WriteFile(filepath.Join(dir, "snap-0000000000000002.lix.tmp-123"), []byte("garbage"), 0o644)

		d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		defer d2.Close()
		if d2.Len() != 50 {
			t.Fatalf("recovered %d records, want 50", d2.Len())
		}
	})

	t.Run("snapshot renamed, old generation not yet removed", func(t *testing.T) {
		dir := t.TempDir()
		d, _ := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
		for i := 0; i < 50; i++ {
			d.Put(core.Key(i), core.Value(i))
		}
		// A real checkpoint, then resurrect the old generation's files to
		// simulate a crash before GC finished.
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		for i := 50; i < 60; i++ {
			d.Put(core.Key(i), core.Value(i))
		}
		d.Crash()
		stale := walHeader(1, 0)
		for i := 0; i < 5; i++ {
			stale = appendRecord(stale, Record{Seq: uint64(i + 1), Op: OpInsert, Key: core.Key(i), Val: 999})
		}
		if err := os.WriteFile(walPath(dir, 1, 0), stale, 0o644); err != nil {
			t.Fatal(err)
		}

		d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		defer d2.Close()
		// The stale generation predates the snapshot and must be ignored:
		// values come from the snapshot + gen-2 WAL, not the old log.
		if d2.Len() != 60 {
			t.Fatalf("recovered %d records, want 60", d2.Len())
		}
		if v, _ := d2.Get(0); v == 999 {
			t.Fatal("pre-snapshot WAL generation replayed over the snapshot")
		}
	})
}
