package store

import (
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/trace"
)

func testSpan(t *testing.T, ops int) (*trace.Tracer, *trace.Span) {
	t.Helper()
	tr := trace.New(trace.Config{SampleRate: 1, Metrics: obs.NewMetrics("span-test")})
	sp := tr.Start(ops)
	if sp == nil {
		t.Fatal("Start returned nil at SampleRate 1")
	}
	return tr, sp
}

// TestDurableInsertBatchSpan pins the write-path stage attribution: a
// span-carrying batched insert under SyncAlways records wal (frame
// encode + append), shard (in-memory apply) and fsync (group commit)
// time, across parallel segment goroutines.
func TestDurableInsertBatchSpan(t *testing.T) {
	d, err := Open(t.TempDir(), Config{Fsync: SyncAlways, CheckpointEvery: -1}, memBuild(2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	recs := make([]core.KV, 64)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(i), Value: core.Value(i)}
	}
	tr, sp := testSpan(t, len(recs))
	d.InsertBatchSpan(recs, sp)

	for _, st := range []trace.Stage{trace.StageWAL, trace.StageShard, trace.StageFsync} {
		if sp.Stage(st) <= 0 {
			t.Errorf("insert span stage %s = %v, want > 0", st, sp.Stage(st))
		}
	}
	if got := sp.Stage(trace.StageDecode); got != 0 {
		t.Errorf("insert span decode stage = %v, want 0 (store never touches it)", got)
	}
	tr.Finish(sp)

	// The records landed despite the instrumentation detour.
	if v, ok := d.Get(63); !ok || v != 63 {
		t.Fatalf("Get(63) after span insert = (%d,%v)", v, ok)
	}

	// Nil span: plain batch path, no crash, same result.
	d.InsertBatchSpan([]core.KV{{Key: 100, Value: 1}}, nil)
	if _, ok := d.Get(100); !ok {
		t.Fatal("nil-span insert lost the record")
	}
}

// TestDurableInsertBatchSpanNoFsyncStage checks that fsync time is only
// attributed when the policy actually group-commits: under SyncNever the
// fsync stage stays zero while wal and shard still record.
func TestDurableInsertBatchSpanNoFsyncStage(t *testing.T) {
	d, err := Open(t.TempDir(), Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	tr, sp := testSpan(t, 8)
	recs := make([]core.KV, 8)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(i), Value: core.Value(i)}
	}
	d.InsertBatchSpan(recs, sp)
	if sp.Stage(trace.StageWAL) <= 0 || sp.Stage(trace.StageShard) <= 0 {
		t.Errorf("wal=%v shard=%v, want both > 0", sp.Stage(trace.StageWAL), sp.Stage(trace.StageShard))
	}
	if got := sp.Stage(trace.StageFsync); got != 0 {
		t.Errorf("fsync stage under SyncNever = %v, want 0", got)
	}
	tr.Finish(sp)
}

// TestDurableDeleteBatchSpan mirrors the insert pin for the delete path.
func TestDurableDeleteBatchSpan(t *testing.T) {
	d, err := Open(t.TempDir(), Config{Fsync: SyncAlways, CheckpointEvery: -1}, memBuild(2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	recs := make([]core.KV, 32)
	keys := make([]core.Key, 32)
	for i := range recs {
		recs[i] = core.KV{Key: core.Key(i), Value: core.Value(i)}
		keys[i] = core.Key(i)
	}
	d.InsertBatch(recs)

	tr, sp := testSpan(t, len(keys))
	oks := d.DeleteBatchSpan(keys, sp)
	for i, ok := range oks {
		if !ok {
			t.Fatalf("delete %d missed", i)
		}
	}
	for _, st := range []trace.Stage{trace.StageWAL, trace.StageShard, trace.StageFsync} {
		if sp.Stage(st) <= 0 {
			t.Errorf("delete span stage %s = %v, want > 0", st, sp.Stage(st))
		}
	}
	tr.Finish(sp)

	// Nil span passthrough.
	if oks := d.DeleteBatchSpan([]core.Key{999}, nil); oks[0] {
		t.Error("nil-span delete of missing key reported true")
	}
}

// TestDurableLookupBatchSpan pins the read-path rule: the durable layer
// adds no wal/fsync stages on reads — the whole batched lookup is shard
// time.
func TestDurableLookupBatchSpan(t *testing.T) {
	d, err := Open(t.TempDir(), Config{Fsync: SyncAlways, CheckpointEvery: -1}, memBuild(2))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.InsertBatch([]core.KV{{Key: 1, Value: 10}, {Key: 2, Value: 20}})

	tr, sp := testSpan(t, 3)
	vals, oks := d.LookupBatchSpan([]core.Key{1, 2, 3}, sp)
	if !oks[0] || vals[0] != 10 || !oks[1] || vals[1] != 20 || oks[2] {
		t.Fatalf("lookup = %v %v", vals, oks)
	}
	if sp.Stage(trace.StageShard) <= 0 {
		t.Errorf("lookup shard stage = %v, want > 0", sp.Stage(trace.StageShard))
	}
	for _, st := range []trace.Stage{trace.StageWAL, trace.StageFsync} {
		if got := sp.Stage(st); got != 0 {
			t.Errorf("lookup span stage %s = %v, want 0 on the read path", st, got)
		}
	}
	tr.Finish(sp)

	// Nil span passthrough.
	if vals, oks := d.LookupBatchSpan([]core.Key{1}, nil); !oks[0] || vals[0] != 10 {
		t.Error("nil-span lookup broken")
	}
}
