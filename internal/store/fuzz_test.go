package store

import (
	"bytes"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

// FuzzWALDecode throws arbitrary bytes at the WAL record decoder. The
// decoder must never panic, must never return a record whose CRC did not
// validate — pinned here through the re-encode property: because payload
// shapes are fixed per op, every accepted record re-encodes
// byte-identically, so the accepted prefix must reproduce the input
// bytes exactly — and must report a truncation offset inside the buffer.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	var seed []byte
	for _, r := range []Record{
		{Seq: 1, Op: OpInsert, Key: 10, Val: 20},
		{Seq: 2, Op: OpDelete, Key: 10},
		{Seq: 3, Op: OpInsert, Key: ^core.Key(0), Val: ^core.Value(0)},
	} {
		seed = appendRecord(seed, r)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])       // torn tail
	f.Add(append(seed, 0xde, 0xad)) // trailing garbage
	corrupted := append([]byte(nil), seed...)
	corrupted[walFrameHdr+2] ^= 0xff // corrupt first payload
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, off := DecodeRecords(data)
		if off < 0 || off > len(data) {
			t.Fatalf("offset %d outside buffer of %d bytes", off, len(data))
		}
		var re []byte
		for _, r := range recs {
			if r.Op != OpInsert && r.Op != OpDelete {
				t.Fatalf("decoder returned unknown op %d", r.Op)
			}
			re = appendRecord(re, r)
		}
		if !bytes.Equal(re, data[:off]) {
			t.Fatalf("accepted records do not re-encode to the accepted prefix:\n got %x\nwant %x", re, data[:off])
		}
		// Decoding the accepted prefix again must be a fixpoint.
		recs2, off2 := DecodeRecords(data[:off])
		if off2 != off || len(recs2) != len(recs) {
			t.Fatalf("re-decode of accepted prefix: %d recs @%d, want %d @%d", len(recs2), off2, len(recs), off)
		}
	})
}

// FuzzSnapshotDecode throws arbitrary bytes at the snapshot codec: it
// must never panic and, when it does accept, re-encoding must reproduce
// an equivalent snapshot.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeSnapshot(&SnapshotData{}))
	f.Add(encodeSnapshot(&SnapshotData{
		Meta:    map[string]string{"kind": "btree"},
		Recs:    []core.KV{{Key: 1, Value: 2}, {Key: 3, Value: 4}},
		LastSeq: 9,
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// Accepted snapshots must round-trip.
		s2, err := DecodeSnapshot(encodeSnapshot(s))
		if err != nil {
			t.Fatalf("re-encode of accepted snapshot rejected: %v", err)
		}
		if len(s2.Recs) != len(s.Recs) || s2.LastSeq != s.LastSeq || len(s2.Meta) != len(s.Meta) {
			t.Fatal("accepted snapshot does not round-trip")
		}
	})
}
