package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/sst"
)

// LSM storage engine. Instead of rewriting the full record set into a
// snapshot at every checkpoint, the engine treats the in-memory index as
// the memtable and the WAL as its durable image: a checkpoint folds the
// retired WAL generations into one sorted run (O(memtable), not
// O(dataset)), appends it to the run list, and publishes the new list in
// a manifest. A size-tiered compactor merges runs of similar size so the
// list stays short and tombstones are eventually dropped.
//
// File layout next to the WAL segments:
//
//	lsm-<gen>.lix  manifest — snapshot codec, empty record section, runs
//	               section listing the live runs newest first
//	sst-<id>.lix   immutable sorted run (internal/sst format)
//
// Durability ordering is the same discipline as the snapshot engine: a
// new run file is fully durable (temp+fsync+rename) before the manifest
// that references it, the manifest is durable before any old file is
// removed, and recovery trusts only the newest decodable manifest plus
// the WAL generations at or after it. Replaying WAL records that a run
// already folded is idempotent (last-wins per key in sequence order), so
// a crash between WAL rotation and manifest publication loses nothing.
const (
	// compactMinRuns is the size-tiered window: the compactor merges the
	// first (oldest-most) window of this many consecutive runs whose sizes
	// are within compactSizeRatio of each other.
	compactMinRuns = 4
	// compactSizeRatio bounds max/min file size inside a merge window.
	compactSizeRatio = 4
	// compactMaxRuns is the fallback trigger: above this many runs the
	// oldest half is merged even if sizes are skewed.
	compactMaxRuns = 12
	// compactRoundsPerFlush bounds compaction work done in one checkpoint.
	compactRoundsPerFlush = 8
)

func manifestPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("lsm-%016x.lix", gen))
}

func runPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("sst-%016x.lix", id))
}

// nextRunID returns the smallest run ID above every run file on disk,
// referenced or orphaned — IDs are never reused, so a crash-orphaned run
// can never collide with a later flush.
func nextRunID(st dirState) uint64 {
	next := uint64(1)
	for id := range st.runs {
		if id >= next {
			next = id + 1
		}
	}
	return next
}

func runRefOf(id uint64, r *sst.Reader) RunRef {
	s := r.Stats()
	return RunRef{
		ID: id, Live: uint64(r.Live()), Dead: uint64(r.Dead()),
		Seq: r.Seq(), MinKey: s.MinKey, MaxKey: s.MaxKey,
	}
}

// createLSM makes a fresh store's seed durable under the LSM engine: the
// seed records become run 1 (when non-empty) and manifest generation 1
// publishes the run list. Called from Create with the engine already
// resolved.
func (d *Durable) createLSM(recs []core.KV) error {
	d.nextRunID = 1
	var refs []RunRef
	if len(recs) > 0 {
		id := d.nextRunID
		if err := sst.WriteFile(runPath(d.dir, id), &sst.FileData{Live: recs}); err != nil {
			return err
		}
		r, err := sst.Open(runPath(d.dir, id))
		if err != nil {
			return err
		}
		d.nextRunID++
		d.runs = []*sst.Reader{r}
		refs = []RunRef{runRefOf(id, r)}
	}
	d.runRefs = refs
	if err := WriteSnapshot(manifestPath(d.dir, 1), &SnapshotData{Meta: d.meta, LastSeq: 0, Runs: refs}); err != nil {
		return err
	}
	d.manifestGen = 1
	d.publishLSMGauges()
	return nil
}

// openLSMBase loads the newest decodable manifest and opens every run it
// references, returning the manifest (with Recs filled in as the merged
// base record set) and the open readers, newest first. Decode failures
// skip to the older manifest generation (which only exists when the newer
// one was never made durable); a decodable manifest whose runs are
// missing or corrupt is a hard error — serving without them would
// silently drop committed writes.
func openLSMBase(dir string, st dirState, info *RecoveryInfo) (*SnapshotData, []*sst.Reader, error) {
	gens := gensDesc(st.manifests)
	if len(gens) == 0 {
		if len(st.runs) > 0 {
			return nil, nil, fmt.Errorf("store: %s holds %d run files but no LSM manifest", dir, len(st.runs))
		}
		return nil, nil, nil
	}
	var man *SnapshotData
	for _, gen := range gens {
		m, err := ReadSnapshot(st.manifests[gen])
		if err != nil {
			info.CorruptSnapshots++
			continue
		}
		man, info.SnapshotGen = m, gen
		break
	}
	if man == nil {
		return nil, nil, fmt.Errorf("store: %s: no decodable LSM manifest among %d generations", dir, len(gens))
	}
	readers := make([]*sst.Reader, 0, len(man.Runs))
	fail := func(err error) (*SnapshotData, []*sst.Reader, error) {
		for _, r := range readers {
			r.Close()
		}
		return nil, nil, err
	}
	for _, ref := range man.Runs {
		r, err := sst.Open(runPath(dir, ref.ID))
		if err != nil {
			return fail(fmt.Errorf("store: manifest gen %d: run %016x: %w", info.SnapshotGen, ref.ID, err))
		}
		if r.Seq() != ref.Seq || r.Live() != int(ref.Live) || r.Dead() != int(ref.Dead) {
			r.Close()
			return fail(fmt.Errorf("store: run %016x does not match its manifest entry", ref.ID))
		}
		readers = append(readers, r)
	}
	base, err := sst.Merge(readers, true)
	if err != nil {
		return fail(err)
	}
	man.Recs = base.Live
	info.SnapshotRecs = len(base.Live)
	return man, readers, nil
}

// flushLSM is the LSM checkpoint: rotate the WAL to a fresh generation
// under the same consistent cut the snapshot engine uses, fold the
// retired generations' committed records (only those past the manifest
// watermark) into one new sorted run, publish the extended run list in a
// new manifest, retire the old files, then let the compactor run. The
// cost is proportional to the WAL delta, never to the dataset.
func (d *Durable) flushLSM() error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()

	// Consistent cut: writers drain, fresh segments take over. lastSeq
	// covers every record in the retired generations.
	d.stateMu.Lock()
	newGen := d.gen + 1
	newWals, err := d.openGeneration(newGen)
	if err != nil {
		d.stateMu.Unlock()
		return err
	}
	lastSeq := d.seq.Load()
	oldGen, oldWals := d.gen, d.wals
	d.gen, d.wals = newGen, newWals
	d.sinceCkpt.Store(0)
	d.stateMu.Unlock()

	// The retired log must be fully durable before its records move into
	// a run; Close fsyncs.
	for _, w := range oldWals {
		if err := w.Close(); err != nil {
			d.fail(err)
			return err
		}
	}

	// Fold every retired generation — lingering generations from earlier
	// crashes included — into one last-wins delta past the manifest seq.
	st, err := scanDir(d.dir)
	if err != nil {
		d.fail(err)
		return err
	}
	var ops []Record
	for gen, segs := range st.wals {
		if gen > oldGen {
			continue
		}
		for _, path := range segs {
			recs, _, err := readSegment(path)
			if err != nil {
				d.fail(err)
				return err
			}
			ops = append(ops, recs...)
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Seq < ops[j].Seq })
	type opState struct {
		val core.Value
		del bool
	}
	fold := make(map[core.Key]opState, len(ops))
	for _, op := range ops {
		if op.Seq <= d.manifestSeq {
			continue // already folded into a run
		}
		fold[op.Key] = opState{val: op.Val, del: op.Op == OpDelete}
	}

	newRuns := append([]*sst.Reader(nil), d.runs...)
	newRefs := append([]RunRef(nil), d.runRefs...)
	flushed := 0
	if len(fold) > 0 {
		fd := &sst.FileData{Seq: lastSeq}
		// A tombstone only matters if an older run could hold the key;
		// with no older runs the delete already fully happened.
		keepDead := len(d.runs) > 0
		for k, s := range fold {
			if s.del {
				if keepDead {
					fd.Dead = append(fd.Dead, k)
				}
				continue
			}
			fd.Live = append(fd.Live, core.KV{Key: k, Value: s.val})
		}
		sort.Slice(fd.Live, func(i, j int) bool { return fd.Live[i].Key < fd.Live[j].Key })
		sort.Slice(fd.Dead, func(i, j int) bool { return fd.Dead[i] < fd.Dead[j] })
		if flushed = len(fd.Live) + len(fd.Dead); flushed > 0 {
			id := d.nextRunID
			if err := sst.WriteFile(runPath(d.dir, id), fd); err != nil {
				d.fail(err)
				return err
			}
			r, err := sst.Open(runPath(d.dir, id))
			if err != nil {
				d.fail(err)
				return err
			}
			d.nextRunID++
			newRuns = append([]*sst.Reader{r}, newRuns...)
			newRefs = append([]RunRef{runRefOf(id, r)}, newRefs...)
		}
	}

	// Manifest durable → old WAL generations and orphans are garbage.
	if err := WriteSnapshot(manifestPath(d.dir, newGen), &SnapshotData{
		Meta: d.meta, LastSeq: lastSeq, Runs: newRefs,
	}); err != nil {
		d.fail(err)
		return err
	}
	d.runMu.Lock()
	d.runs, d.runRefs = newRuns, newRefs
	d.runMu.Unlock()
	d.manifestGen, d.manifestSeq = newGen, lastSeq
	d.gcLSM(newGen, oldGen)
	d.emit(obs.EvCheckpoint, flushed, fmt.Sprintf("lsm gen=%d runs=%d", newGen, len(newRefs)))
	d.publishLSMGauges()
	return d.maybeCompact()
}

// gcLSM removes files the current manifest generation has superseded:
// older manifests, WAL generations at or before oldGen, and run files the
// manifest does not reference (crash orphans).
func (d *Durable) gcLSM(keepGen, oldGen uint64) {
	st, err := scanDir(d.dir)
	if err != nil {
		return
	}
	for gen, path := range st.manifests {
		if gen < keepGen {
			os.Remove(path)
		}
	}
	for gen, segs := range st.wals {
		if gen <= oldGen {
			for _, path := range segs {
				os.Remove(path)
			}
		}
	}
	live := make(map[uint64]bool, len(d.runRefs))
	for _, ref := range d.runRefs {
		live[ref.ID] = true
	}
	for id, path := range st.runs {
		if !live[id] {
			os.Remove(path)
		}
	}
	syncDir(d.dir)
}

// pickCompaction scans merge windows of compactMinRuns consecutive runs
// from the oldest end and returns the first whose sizes are within
// compactSizeRatio (size-tiered: merging similar sizes keeps write
// amplification logarithmic). Above compactMaxRuns the oldest half is
// merged regardless. Indices are into d.runs (newest first).
func (d *Durable) pickCompaction() (lo, hi int, ok bool) {
	n := len(d.runs)
	for start := n - compactMinRuns; start >= 0; start-- {
		minB, maxB := int64(1<<62), int64(0)
		for _, r := range d.runs[start : start+compactMinRuns] {
			b := r.FileBytes()
			if b < minB {
				minB = b
			}
			if b > maxB {
				maxB = b
			}
		}
		if maxB <= minB*compactSizeRatio {
			return start, start + compactMinRuns, true
		}
	}
	if n > compactMaxRuns {
		return n - n/2, n, true
	}
	return 0, 0, false
}

// maybeCompact runs size-tiered compaction rounds until no window
// qualifies (bounded per flush). Caller holds ckptMu.
func (d *Durable) maybeCompact() error {
	for i := 0; i < compactRoundsPerFlush; i++ {
		lo, hi, ok := d.pickCompaction()
		if !ok {
			return nil
		}
		if err := d.compact(lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// compact merges runs[lo:hi] (a window of adjacent ages) into one new
// run and republishes the manifest at the same generation — compaction
// folds no new WAL records, so the sequence watermark is unchanged and
// an atomic rename over the same manifest name is the whole commit.
// Tombstones are dropped only when the window includes the oldest run;
// anywhere else a dropped tombstone would resurrect a shadowed record.
func (d *Durable) compact(lo, hi int) error {
	window := d.runs[lo:hi]
	dropDead := hi == len(d.runs)
	fd, err := sst.Merge(window, dropDead)
	if err != nil {
		d.fail(err)
		return err
	}
	newRuns := append([]*sst.Reader(nil), d.runs[:lo]...)
	newRefs := append([]RunRef(nil), d.runRefs[:lo]...)
	merged := 0
	if len(fd.Live)+len(fd.Dead) > 0 {
		id := d.nextRunID
		if err := sst.WriteFile(runPath(d.dir, id), fd); err != nil {
			d.fail(err)
			return err
		}
		r, err := sst.Open(runPath(d.dir, id))
		if err != nil {
			d.fail(err)
			return err
		}
		d.nextRunID++
		merged = len(fd.Live) + len(fd.Dead)
		newRuns = append(newRuns, r)
		newRefs = append(newRefs, runRefOf(id, r))
	}
	newRuns = append(newRuns, d.runs[hi:]...)
	newRefs = append(newRefs, d.runRefs[hi:]...)

	if err := WriteSnapshot(manifestPath(d.dir, d.manifestGen), &SnapshotData{
		Meta: d.meta, LastSeq: d.manifestSeq, Runs: newRefs,
	}); err != nil {
		d.fail(err)
		return err
	}
	old := make([]*sst.Reader, len(window))
	copy(old, window)
	d.runMu.Lock()
	d.runs, d.runRefs = newRuns, newRefs
	d.runMu.Unlock()
	for _, r := range old {
		addCounters(&d.lsmRetired, r.Counters())
		r.Close()
		os.Remove(r.Path())
	}
	syncDir(d.dir)
	d.emit(obs.EvCompaction, merged, fmt.Sprintf("lsm merged %d runs into %d records (dropDead=%v)", len(old), merged, dropDead))
	d.publishLSMGauges()
	return nil
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

// LSMStats summarizes the LSM engine state (zero value for the snapshot
// engine).
type LSMStats struct {
	Runs        int
	RunBytes    int64
	LiveRecs    int
	Tombstones  int
	ManifestGen uint64
	ManifestSeq uint64
	Counters    sst.Counters
}

// Engine reports which storage engine the store runs on.
func (d *Durable) Engine() string {
	if d.engine == "" {
		return EngineSnapshot
	}
	return d.engine
}

// Runs returns a snapshot of the open LSM run readers, newest first. The
// readers stay valid until the next flush or compaction replaces them;
// hold ckpt-free callers should treat them as a point-in-time view.
func (d *Durable) Runs() []*sst.Reader {
	d.runMu.RLock()
	defer d.runMu.RUnlock()
	return append([]*sst.Reader(nil), d.runs...)
}

// Tiers returns a point-in-time read view over the current runs.
func (d *Durable) Tiers() *sst.Tiers { return sst.NewTiers(d.Runs()) }

// LSMStats reports the engine state.
func (d *Durable) LSMStats() LSMStats {
	d.runMu.RLock()
	runs := d.runs
	st := LSMStats{Runs: len(runs), ManifestGen: d.manifestGen, ManifestSeq: d.manifestSeq}
	for _, r := range runs {
		st.RunBytes += r.FileBytes()
		st.LiveRecs += r.Live()
		st.Tombstones += r.Dead()
	}
	st.Counters = sumCounters(runs, d.lsmRetired)
	d.runMu.RUnlock()
	return st
}

func addCounters(dst *sst.Counters, src sst.Counters) {
	dst.Probes += src.Probes
	dst.RangeSkips += src.RangeSkips
	dst.FilterSkips += src.FilterSkips
	dst.FalsePositives += src.FalsePositives
	dst.Hits += src.Hits
	dst.TombHits += src.TombHits
	dst.PageReads += src.PageReads
}

func sumCounters(runs []*sst.Reader, base sst.Counters) sst.Counters {
	c := base
	for _, r := range runs {
		addCounters(&c, r.Counters())
	}
	return c
}

// publishLSMGauges refreshes the LSM gauges and pushes filter counter
// deltas into Metrics. Called after every flush and compaction (under
// ckptMu, which makes the delta bookkeeping race-free).
func (d *Durable) publishLSMGauges() {
	m := d.cfg.Metrics
	if m == nil {
		return
	}
	d.runMu.RLock()
	runs := append([]*sst.Reader(nil), d.runs...)
	d.runMu.RUnlock()
	var bytes, tombs, bits int64
	for _, r := range runs {
		bytes += r.FileBytes()
		tombs += int64(r.Dead())
		bits += int64(r.FilterBits())
	}
	m.LSMRuns.Set(int64(len(runs)))
	m.LSMRunBytes.Set(bytes)
	m.LSMTombs.Set(tombs)
	m.FilterBytes.Set((bits + 7) / 8)
	if len(runs) > 0 {
		m.FilterFPRPpm.Set(int64(runs[0].MeasuredFPR() * 1e6))
	}
	c := sumCounters(runs, d.lsmRetired)
	m.FilterProbes.Add((c.Probes - c.RangeSkips) - (d.lsmPub.Probes - d.lsmPub.RangeSkips))
	m.FilterSkips.Add(c.FilterSkips - d.lsmPub.FilterSkips)
	m.FilterFPs.Add(c.FalsePositives - d.lsmPub.FalsePositives)
	d.lsmPub = c
}
