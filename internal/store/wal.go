package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"github.com/lix-go/lix/internal/obs"
)

// WAL on-disk format. A segment file is a 24-byte header followed by a
// stream of framed records:
//
//	header:  magic "LIXWAL01" | u64 generation | u32 segment | u32 CRC32C(gen, seg)
//	record:  u32 payload length | u32 CRC32C(payload) | payload
//	payload: u8 op | u64 seq | u64 key | u64 value (inserts only)
//
// All integers are little-endian. A record is committed iff its frame is
// fully present and its CRC validates; recovery truncates the segment at
// the first frame that is torn (short) or corrupt (CRC/shape mismatch)
// and keeps everything before it. Payload lengths are fixed per op (25
// bytes for inserts, 17 for deletes), so any CRC-valid frame re-encodes
// byte-identically — the property FuzzWALDecode pins.
const (
	walMagic      = "LIXWAL01"
	walHeaderSize = 8 + 8 + 4 + 4
	walFrameHdr   = 8 // u32 length + u32 crc

	insertPayload = 1 + 8 + 8 + 8
	deletePayload = 1 + 8 + 8

	// maxWalPayload bounds the decoder: any declared length beyond it is
	// corruption, not a huge record.
	maxWalPayload = 64
)

// appendRecord encodes r's frame onto buf.
func appendRecord(buf []byte, r Record) []byte {
	var p [insertPayload]byte
	n := deletePayload
	p[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(p[1:], r.Seq)
	binary.LittleEndian.PutUint64(p[9:], r.Key)
	if r.Op == OpInsert {
		binary.LittleEndian.PutUint64(p[17:], r.Val)
		n = insertPayload
	}
	var hdr [walFrameHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(p[:n], castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, p[:n]...)
}

// DecodeRecords scans a record stream (the segment body after the file
// header) and returns every leading committed record plus the byte offset
// of the first torn or corrupt frame (== len(buf) when the stream is
// clean). It never panics on arbitrary input and never returns a record
// whose CRC did not validate.
func DecodeRecords(buf []byte) ([]Record, int) {
	var out []Record
	off := 0
	for {
		if len(buf)-off < walFrameHdr {
			return out, off
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		crc := binary.LittleEndian.Uint32(buf[off+4:])
		if n > maxWalPayload || len(buf)-off-walFrameHdr < n {
			return out, off
		}
		payload := buf[off+walFrameHdr : off+walFrameHdr+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			return out, off
		}
		r, ok := decodePayload(payload)
		if !ok {
			return out, off
		}
		out = append(out, r)
		off += walFrameHdr + n
	}
}

// decodePayload parses one CRC-validated payload, rejecting unknown ops
// and lengths that do not exactly match the op's fixed shape.
func decodePayload(p []byte) (Record, bool) {
	if len(p) < 1 {
		return Record{}, false
	}
	r := Record{Op: OpKind(p[0])}
	switch r.Op {
	case OpInsert:
		if len(p) != insertPayload {
			return Record{}, false
		}
		r.Val = binary.LittleEndian.Uint64(p[17:])
	case OpDelete:
		if len(p) != deletePayload {
			return Record{}, false
		}
	default:
		return Record{}, false
	}
	r.Seq = binary.LittleEndian.Uint64(p[1:])
	r.Key = binary.LittleEndian.Uint64(p[9:])
	return r, true
}

// WAL is one append-only segment file. Append serializes writers on an
// internal mutex; SyncTo implements batched group commit: concurrent
// callers queue on the sync mutex and every fsync covers all bytes
// written before it started, so followers whose offset is already durable
// return without issuing their own fsync.
type WAL struct {
	path string
	gen  uint64
	seg  int

	mu       sync.Mutex // serializes Append (encode + write + size)
	f        *os.File
	size     int64
	buf      []byte
	appended uint64

	syncMu  sync.Mutex // serializes fsync; the group-commit queue
	synced  int64      // bytes known durable
	fsyncs  uint64
	closed  bool
	syncErr error

	// Optional observability sinks, shared with the owning Durable.
	hook    *obs.Hook
	fsyncNS *obs.Histogram
}

// OpenWAL opens or creates the segment file at path, recovers its
// committed records, and truncates any torn or corrupt tail so appends
// continue from the last committed frame. A missing, empty or
// header-torn file is (re)initialized as an empty segment. It returns the
// WAL positioned for appending, the recovered records, and the number of
// tail bytes truncated.
func OpenWAL(path string, gen uint64, seg int, hook *obs.Hook, fsyncNS *obs.Histogram) (*WAL, []Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, 0, err
	}
	recs, body, truncated := []Record(nil), 0, int64(0)
	fresh := !validWalHeader(data, gen, seg)
	if fresh {
		// Missing file, or a header torn by a crash at creation time: no
		// record can have committed, start the segment over.
		truncated = int64(len(data))
		if err := os.WriteFile(path, walHeader(gen, seg), 0o644); err != nil {
			return nil, nil, 0, err
		}
	} else {
		recs, body = DecodeRecords(data[walHeaderSize:])
		if end := walHeaderSize + body; end < len(data) {
			truncated = int64(len(data) - end)
			if err := os.Truncate(path, int64(end)); err != nil {
				return nil, nil, 0, err
			}
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	w := &WAL{
		path: path, gen: gen, seg: seg, f: f,
		size: int64(walHeaderSize + body),
		hook: hook, fsyncNS: fsyncNS,
	}
	return w, recs, truncated, nil
}

// readSegment decodes a segment file without opening it for appending or
// truncating it (used for read-only older generations during recovery).
// Torn tails are simply ignored.
func readSegment(path string) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < walHeaderSize || string(data[:8]) != walMagic {
		return nil, int64(len(data)), nil
	}
	recs, body := DecodeRecords(data[walHeaderSize:])
	return recs, int64(len(data) - walHeaderSize - body), nil
}

func walHeader(gen uint64, seg int) []byte {
	h := make([]byte, walHeaderSize)
	copy(h, walMagic)
	binary.LittleEndian.PutUint64(h[8:], gen)
	binary.LittleEndian.PutUint32(h[16:], uint32(seg))
	binary.LittleEndian.PutUint32(h[20:], crc32.Checksum(h[8:20], castagnoli))
	return h
}

func validWalHeader(data []byte, gen uint64, seg int) bool {
	if len(data) < walHeaderSize || string(data[:8]) != walMagic {
		return false
	}
	if crc32.Checksum(data[8:20], castagnoli) != binary.LittleEndian.Uint32(data[20:]) {
		return false
	}
	return binary.LittleEndian.Uint64(data[8:]) == gen &&
		binary.LittleEndian.Uint32(data[16:]) == uint32(seg)
}

// Append encodes and writes recs as one contiguous write, returning the
// logical end offset of the last record. It does not fsync; pair with
// SyncTo (or Sync) according to the configured policy.
func (w *WAL) Append(recs ...Record) (int64, error) {
	w.mu.Lock()
	w.buf = w.buf[:0]
	for _, r := range recs {
		w.buf = appendRecord(w.buf, r)
	}
	n, err := w.f.Write(w.buf)
	w.size += int64(n)
	off := w.size
	w.appended += uint64(len(recs))
	w.mu.Unlock()
	if err != nil {
		return off, fmt.Errorf("store: wal %s append: %w", w.path, err)
	}
	return off, nil
}

// SyncTo makes every byte up to off durable. Group commit: if a
// concurrent caller's fsync already covered off by the time the sync
// mutex is acquired, no additional fsync is issued.
func (w *WAL) SyncTo(off int64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced >= off {
		return nil
	}
	if w.syncErr != nil {
		return w.syncErr
	}
	if w.closed {
		return fmt.Errorf("store: wal %s: sync after close", w.path)
	}
	w.mu.Lock()
	end := w.size
	w.mu.Unlock()
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		w.syncErr = fmt.Errorf("store: wal %s fsync: %w", w.path, err)
		return w.syncErr
	}
	elapsed := time.Since(start)
	w.fsyncs++
	covered := end - w.synced
	w.synced = end
	if w.fsyncNS != nil {
		w.fsyncNS.Observe(uint64(elapsed))
	}
	if w.hook != nil {
		w.hook.Emit(obs.EvWALFlush, int(covered), fmt.Sprintf("seg=%d", w.seg))
	}
	return nil
}

// Sync makes everything appended so far durable.
func (w *WAL) Sync() error {
	w.mu.Lock()
	off := w.size
	w.mu.Unlock()
	return w.SyncTo(off)
}

// Appended returns the number of records appended through this handle.
func (w *WAL) Appended() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// Fsyncs returns the number of fsync calls issued.
func (w *WAL) Fsyncs() uint64 {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.fsyncs
}

// Size returns the logical file size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Path returns the segment file path.
func (w *WAL) Path() string { return w.path }

// Close fsyncs outstanding writes and closes the file. After Close,
// SyncTo returns nil for offsets the close covered.
func (w *WAL) Close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.closed {
		return nil
	}
	w.mu.Lock()
	end := w.size
	w.mu.Unlock()
	var err error
	if w.synced < end && w.syncErr == nil {
		if err = w.f.Sync(); err == nil {
			w.synced = end
			w.fsyncs++
		}
	}
	w.closed = true
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash closes the file without syncing — a crash-simulation aid for
// tests and examples: whatever the OS has not yet flushed is exactly what
// a power loss at this instant would lose.
func (w *WAL) Crash() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}
