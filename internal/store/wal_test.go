package store

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

func testRecords(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{Seq: uint64(i + 1), Op: OpInsert, Key: core.Key(i * 7), Val: core.Value(i)}
		if i%5 == 4 {
			out[i].Op = OpDelete
			out[i].Val = 0
		}
	}
	return out
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.lix")
	w, recs, trunc, err := OpenWAL(path, 3, 1, nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(recs) != 0 || trunc != 0 {
		t.Fatalf("fresh segment: recs=%d trunc=%d", len(recs), trunc)
	}
	want := testRecords(100)
	for _, r := range want {
		if _, err := w.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, got, trunc, err := OpenWAL(path, 3, 1, nil, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if trunc != 0 {
		t.Fatalf("clean reopen truncated %d bytes", trunc)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestWALHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.lix")
	w, _, _, err := OpenWAL(path, 1, 0, nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	w.Append(testRecords(3)...)
	w.Close()

	// Opening with a different gen/seg identity must reinitialize, not
	// adopt the other segment's records.
	_, recs, trunc, err := OpenWAL(path, 2, 0, nil, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(recs) != 0 || trunc == 0 {
		t.Fatalf("gen-mismatched segment not reinitialized: recs=%d trunc=%d", len(recs), trunc)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.lix")
	w, _, _, err := OpenWAL(path, 1, 0, nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := testRecords(10)
	w.Append(want...)
	w.Close()
	data, _ := os.ReadFile(path)

	// Chop off the last 5 bytes: the final frame is torn.
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	w2, recs, trunc, err := OpenWAL(path, 1, 0, nil, nil)
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	if len(recs) != len(want)-1 {
		t.Fatalf("torn tail: recovered %d records, want %d", len(recs), len(want)-1)
	}
	if trunc == 0 {
		t.Fatal("torn tail reported 0 truncated bytes")
	}
	// Appends must land after the truncation point and survive a reopen.
	extra := Record{Seq: 99, Op: OpInsert, Key: 1234, Val: 5678}
	if _, err := w2.Append(extra); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	w2.Close()
	_, recs, _, err = OpenWAL(path, 1, 0, nil, nil)
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	if len(recs) != len(want) || recs[len(recs)-1] != extra {
		t.Fatalf("append after truncation lost: %v", recs)
	}
}

func TestWALCorruptMiddleStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.lix")
	w, _, _, _ := OpenWAL(path, 1, 0, nil, nil)
	w.Append(testRecords(20)...)
	w.Close()
	data, _ := os.ReadFile(path)

	// Flip one payload byte in the middle of the stream: everything from
	// that frame on is discarded, the prefix survives.
	pos := walHeaderSize + 5*(walFrameHdr+insertPayload) + walFrameHdr + 3
	data[pos] ^= 0xff
	os.WriteFile(path, data, 0o644)
	_, recs, trunc, err := OpenWAL(path, 1, 0, nil, nil)
	if err != nil {
		t.Fatalf("reopen corrupt: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("corrupt frame 5: recovered %d records, want 5", len(recs))
	}
	if trunc == 0 {
		t.Fatal("corruption reported 0 truncated bytes")
	}
}

func TestWALGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.lix")
	w, _, _, err := OpenWAL(path, 1, 0, nil, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer w.Close()

	const writers, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				off, err := w.Append(Record{Seq: uint64(g*each + i + 1), Op: OpInsert, Key: core.Key(g), Val: core.Value(i)})
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := w.SyncTo(off); err != nil {
					t.Errorf("sync: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if w.Appended() != writers*each {
		t.Fatalf("appended %d, want %d", w.Appended(), writers*each)
	}
	// Group commit: concurrent SyncTo calls share fsyncs, so the fsync
	// count must come in below one per record.
	if f := w.Fsyncs(); f == 0 || f > writers*each {
		t.Fatalf("fsyncs %d out of range (0, %d]", f, writers*each)
	}
}

func TestWALSyncAfterCloseCovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.lix")
	w, _, _, _ := OpenWAL(path, 1, 0, nil, nil)
	off, err := w.Append(Record{Seq: 1, Op: OpInsert, Key: 1, Val: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A SyncTo racing a checkpoint rotation resolves via the close's fsync.
	if err := w.SyncTo(off); err != nil {
		t.Fatalf("SyncTo after covering close: %v", err)
	}
	if err := w.SyncTo(off + 1); err == nil {
		t.Fatal("SyncTo beyond the close must fail")
	}
}

func TestDecodeRecordsReencode(t *testing.T) {
	var buf []byte
	for _, r := range testRecords(17) {
		buf = appendRecord(buf, r)
	}
	recs, off := DecodeRecords(buf)
	if off != len(buf) || len(recs) != 17 {
		t.Fatalf("clean stream: off=%d/%d recs=%d", off, len(buf), len(recs))
	}
	var re []byte
	for _, r := range recs {
		re = appendRecord(re, r)
	}
	if !bytes.Equal(re, buf) {
		t.Fatal("re-encode of decoded records differs from input")
	}
}
