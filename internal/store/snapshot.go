package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"github.com/lix-go/lix/internal/core"
)

// Snapshot on-disk format. A snapshot file is a magic string followed by
// CRC32C-framed sections:
//
//	file:    magic "LIXSNAP1" | section*
//	section: u8 id | u64 payload length | payload | u32 CRC32C(id, length, payload)
//
// Sections (in write order):
//
//	meta (1):    u32 pair count | (u16 klen, key bytes, u16 vlen, value bytes)*
//	records (2): u64 count | (u64 key, u64 value)* — sorted ascending by key
//	state (3):   u64 last committed WAL sequence number
//	runs (4):    u32 run count | (u64 id, u64 live, u64 dead, u64 seq,
//	             u64 minKey, u64 maxKey)* — the LSM engine's run list,
//	             newest first (absent from snapshot-engine files; readers
//	             that predate it skip it as an unknown section)
//	footer (240): u64 record count echo — marks the file complete
//
// All integers are little-endian. A reader accepts a snapshot only if
// every section's CRC validates and the footer is present with a matching
// record count; anything else (torn write, bit rot, partial copy) makes
// the whole snapshot invalid and recovery falls back to the previous
// generation. Writers get atomicity from temp-file-then-rename: the final
// name only ever refers to a fully written, fsynced file.
const (
	snapMagic = "LIXSNAP1"

	secMeta    = 1
	secRecords = 2
	secState   = 3
	secRuns    = 4
	secFooter  = 240

	// maxSnapSection bounds a declared section length during parsing
	// (1 GiB ~ 64M records) so corrupt lengths fail fast instead of
	// attempting huge allocations.
	maxSnapSection = 1 << 30
)

// SnapshotData is the logical content of one snapshot: the rebuild
// parameters, the full record set and the WAL sequence high-water mark at
// checkpoint time. The LSM engine reuses the codec for its manifests:
// Recs stays empty and Runs lists the sorted-run files, newest first.
type SnapshotData struct {
	Meta    map[string]string
	Recs    []core.KV
	LastSeq uint64
	Runs    []RunRef
}

// RunRef is one manifest entry: the identity and summary of a sorted-run
// file the LSM engine owns. The list order in the manifest is the age
// order (newest first), which is what makes shadowing deterministic.
type RunRef struct {
	// ID names the run file (sst-<id>.lix). IDs are allocated
	// monotonically and never reused within a store directory.
	ID uint64
	// Live and Dead are the run's record and tombstone counts.
	Live uint64
	Dead uint64
	// Seq is the run's WAL sequence watermark.
	Seq uint64
	// MinKey and MaxKey bound the run's keys (live ∪ dead).
	MinKey core.Key
	MaxKey core.Key
}

func appendSection(buf []byte, id byte, payload []byte) []byte {
	var hdr [9]byte
	hdr[0] = id
	binary.LittleEndian.PutUint64(hdr[1:], uint64(len(payload)))
	crc := crc32.Update(crc32.Checksum(hdr[:], castagnoli), castagnoli, payload)
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// encodeSnapshot renders s into the file format.
func encodeSnapshot(s *SnapshotData) []byte {
	// Meta, keys sorted for deterministic bytes.
	keys := make([]string, 0, len(s.Meta))
	for k := range s.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	meta := binary.LittleEndian.AppendUint32(nil, uint32(len(keys)))
	for _, k := range keys {
		meta = binary.LittleEndian.AppendUint16(meta, uint16(len(k)))
		meta = append(meta, k...)
		meta = binary.LittleEndian.AppendUint16(meta, uint16(len(s.Meta[k])))
		meta = append(meta, s.Meta[k]...)
	}

	recs := binary.LittleEndian.AppendUint64(nil, uint64(len(s.Recs)))
	for _, r := range s.Recs {
		recs = binary.LittleEndian.AppendUint64(recs, r.Key)
		recs = binary.LittleEndian.AppendUint64(recs, r.Value)
	}

	state := binary.LittleEndian.AppendUint64(nil, s.LastSeq)
	footer := binary.LittleEndian.AppendUint64(nil, uint64(len(s.Recs)))

	buf := append([]byte(nil), snapMagic...)
	buf = appendSection(buf, secMeta, meta)
	buf = appendSection(buf, secRecords, recs)
	buf = appendSection(buf, secState, state)
	if len(s.Runs) > 0 {
		runs := binary.LittleEndian.AppendUint32(nil, uint32(len(s.Runs)))
		for _, r := range s.Runs {
			runs = binary.LittleEndian.AppendUint64(runs, r.ID)
			runs = binary.LittleEndian.AppendUint64(runs, r.Live)
			runs = binary.LittleEndian.AppendUint64(runs, r.Dead)
			runs = binary.LittleEndian.AppendUint64(runs, r.Seq)
			runs = binary.LittleEndian.AppendUint64(runs, r.MinKey)
			runs = binary.LittleEndian.AppendUint64(runs, r.MaxKey)
		}
		buf = appendSection(buf, secRuns, runs)
	}
	return appendSection(buf, secFooter, footer)
}

// DecodeSnapshot parses and validates snapshot bytes. It never panics on
// arbitrary input.
func DecodeSnapshot(data []byte) (*SnapshotData, error) {
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("store: snapshot: bad magic")
	}
	s := &SnapshotData{Meta: map[string]string{}}
	off, footerCount, sawFooter := len(snapMagic), uint64(0), false
	for off < len(data) {
		if len(data)-off < 9+4 {
			return nil, fmt.Errorf("store: snapshot: torn section header at %d", off)
		}
		id := data[off]
		n := binary.LittleEndian.Uint64(data[off+1 : off+9])
		if n > maxSnapSection || uint64(len(data)-off-9-4) < n {
			return nil, fmt.Errorf("store: snapshot: section %d truncated at %d", id, off)
		}
		payload := data[off+9 : off+9+int(n)]
		crc := crc32.Update(crc32.Checksum(data[off:off+9], castagnoli), castagnoli, payload)
		if crc != binary.LittleEndian.Uint32(data[off+9+int(n):]) {
			return nil, fmt.Errorf("store: snapshot: section %d CRC mismatch at %d", id, off)
		}
		switch id {
		case secMeta:
			if err := decodeMeta(payload, s.Meta); err != nil {
				return nil, err
			}
		case secRecords:
			recs, err := decodeRecs(payload)
			if err != nil {
				return nil, err
			}
			s.Recs = recs
		case secState:
			if len(payload) != 8 {
				return nil, fmt.Errorf("store: snapshot: state section has %d bytes", len(payload))
			}
			s.LastSeq = binary.LittleEndian.Uint64(payload)
		case secRuns:
			runs, err := decodeRuns(payload)
			if err != nil {
				return nil, err
			}
			s.Runs = runs
		case secFooter:
			if len(payload) != 8 {
				return nil, fmt.Errorf("store: snapshot: footer has %d bytes", len(payload))
			}
			footerCount, sawFooter = binary.LittleEndian.Uint64(payload), true
		default:
			// Unknown CRC-valid sections are skipped for forward compatibility.
		}
		off += 9 + int(n) + 4
	}
	if !sawFooter {
		return nil, fmt.Errorf("store: snapshot: missing footer (incomplete file)")
	}
	if footerCount != uint64(len(s.Recs)) {
		return nil, fmt.Errorf("store: snapshot: footer records %d, section holds %d", footerCount, len(s.Recs))
	}
	return s, nil
}

func decodeMeta(p []byte, out map[string]string) error {
	if len(p) < 4 {
		return fmt.Errorf("store: snapshot: meta section has %d bytes", len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	off := 4
	for i := 0; i < n; i++ {
		k, next, err := decodeStr(p, off)
		if err != nil {
			return err
		}
		v, next2, err := decodeStr(p, next)
		if err != nil {
			return err
		}
		out[k] = v
		off = next2
	}
	if off != len(p) {
		return fmt.Errorf("store: snapshot: %d trailing meta bytes", len(p)-off)
	}
	return nil
}

func decodeStr(p []byte, off int) (string, int, error) {
	if len(p)-off < 2 {
		return "", 0, fmt.Errorf("store: snapshot: torn meta string at %d", off)
	}
	n := int(binary.LittleEndian.Uint16(p[off:]))
	off += 2
	if len(p)-off < n {
		return "", 0, fmt.Errorf("store: snapshot: torn meta string at %d", off)
	}
	return string(p[off : off+n]), off + n, nil
}

func decodeRecs(p []byte) ([]core.KV, error) {
	if len(p) < 8 {
		return nil, fmt.Errorf("store: snapshot: records section has %d bytes", len(p))
	}
	n := binary.LittleEndian.Uint64(p)
	if uint64(len(p)-8) != n*16 {
		return nil, fmt.Errorf("store: snapshot: records section declares %d records in %d bytes", n, len(p)-8)
	}
	recs := make([]core.KV, n)
	for i := range recs {
		recs[i].Key = binary.LittleEndian.Uint64(p[8+16*i:])
		recs[i].Value = binary.LittleEndian.Uint64(p[16+16*i:])
		if i > 0 && recs[i].Key <= recs[i-1].Key {
			return nil, fmt.Errorf("store: snapshot: records not strictly ascending at %d", i)
		}
	}
	return recs, nil
}

func decodeRuns(p []byte) ([]RunRef, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("store: snapshot: runs section has %d bytes", len(p))
	}
	n := binary.LittleEndian.Uint32(p)
	if uint64(len(p)-4) != uint64(n)*48 {
		return nil, fmt.Errorf("store: snapshot: runs section declares %d runs in %d bytes", n, len(p)-4)
	}
	runs := make([]RunRef, n)
	for i := range runs {
		b := p[4+48*i:]
		runs[i] = RunRef{
			ID:     binary.LittleEndian.Uint64(b),
			Live:   binary.LittleEndian.Uint64(b[8:]),
			Dead:   binary.LittleEndian.Uint64(b[16:]),
			Seq:    binary.LittleEndian.Uint64(b[24:]),
			MinKey: binary.LittleEndian.Uint64(b[32:]),
			MaxKey: binary.LittleEndian.Uint64(b[40:]),
		}
	}
	return runs, nil
}

// WriteSnapshot atomically writes s to path: the bytes go to a temp file
// in the same directory, which is fsynced, renamed over path, and the
// directory fsynced so the rename itself is durable. Readers therefore
// never observe a partially written snapshot under the final name.
func WriteSnapshot(path string, s *SnapshotData) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(encodeSnapshot(s)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// ReadSnapshot loads and validates the snapshot at path.
func ReadSnapshot(path string) (*SnapshotData, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(data)
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Errors are returned except on platforms where directories
// cannot be fsynced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
