package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/sst"
	"github.com/lix-go/lix/internal/trace"
)

// DefaultCheckpointEvery is the WAL record count between automatic
// background checkpoints when Config.CheckpointEvery is zero.
const DefaultCheckpointEvery = 1 << 16

// DefaultSyncInterval is the background flush cadence for SyncInterval
// when Config.SyncInterval is zero.
const DefaultSyncInterval = 50 * time.Millisecond

// Storage engines. EngineSnapshot rewrites the full record set into a
// snapshot at every checkpoint; EngineLSM flushes only the WAL delta into
// a new sorted run and lets a background size-tiered compactor bound the
// run count, making checkpoint cost O(memtable) instead of O(dataset).
const (
	EngineSnapshot = "snapshot"
	EngineLSM      = "lsm"
)

// Config tunes a Durable store.
type Config struct {
	// Fsync selects WAL durability (default SyncAlways).
	Fsync SyncPolicy
	// SyncInterval is the background flush cadence under SyncInterval
	// (0 selects DefaultSyncInterval).
	SyncInterval time.Duration
	// CheckpointEvery triggers a background checkpoint after this many WAL
	// records since the last one (0 selects DefaultCheckpointEvery,
	// negative disables automatic checkpoints).
	CheckpointEvery int
	// Engine selects the checkpoint storage engine (EngineSnapshot or
	// EngineLSM; "" means EngineSnapshot). On reopen the engine the
	// directory's files belong to wins over this setting.
	Engine string
	// Meta is the rebuild-parameter map persisted in snapshots of a fresh
	// store; on reopen the on-disk meta wins and is passed to the builder.
	Meta map[string]string
	// Metrics, when set, receives checkpoint/flush/recovery events and the
	// fsync-latency histogram.
	Metrics *obs.Metrics
}

// RecoveryInfo describes what Open reconstructed.
type RecoveryInfo struct {
	// SnapshotGen is the generation of the snapshot loaded (0 = none).
	SnapshotGen uint64
	// SnapshotRecs is the record count loaded from the snapshot.
	SnapshotRecs int
	// WALRecs is the number of committed WAL records replayed.
	WALRecs int
	// TruncatedBytes counts torn or corrupt tail bytes discarded across
	// segments.
	TruncatedBytes int64
	// CorruptSnapshots counts snapshot generations that failed validation
	// and were skipped.
	CorruptSnapshots int
	// Runs is the number of LSM sorted runs loaded (0 for the snapshot
	// engine).
	Runs int
	// Elapsed is the wall time recovery took.
	Elapsed time.Duration
}

// Durable wraps a mutable in-memory index with write-ahead logging and
// snapshot checkpoints. Every mutation is framed into a WAL segment
// before it is applied in memory; Checkpoint rotates to a fresh
// generation by atomically writing a full snapshot and retiring the old
// log. All methods are safe for concurrent use (writes to indexes that
// are not themselves concurrency-safe are serialized internally).
type Durable struct {
	dir string
	cfg Config

	ix MutableIndex
	// Batch capabilities of the wrapped index, detected once at assemble;
	// nil fields fall back to per-record loops.
	batchLookup     core.BatchLookuper
	batchLookupInto core.BatchLookuperInto
	batchInsert     core.BatchInserter
	batchDelete     core.BatchDeleter
	route           Router
	segments        int
	// concReads: the wrapped index tolerates reads concurrent with writes,
	// so readers skip the per-segment lock.
	concReads bool
	meta      map[string]string

	// stateMu: writers and checkpoints. Writers hold RLock for the whole
	// log+apply step, so Checkpoint's Lock is a consistent cut.
	stateMu sync.RWMutex
	// segMu[i]: orders log and apply within segment i, which preserves
	// per-key operation order (a key routes to exactly one segment).
	// Non-concurrent backends have a single segment, so this lock also
	// serializes their writes; readers of such backends take RLock.
	segMu []sync.RWMutex

	gen  uint64
	wals []*WAL

	seq       atomic.Uint64 // last assigned commit sequence number
	sinceCkpt atomic.Int64  // records logged since the last checkpoint

	ckptMu   sync.Mutex // serializes checkpoints (and LSM flush/compaction)
	ckptCh   chan struct{}
	stop     chan struct{}
	bg       sync.WaitGroup
	closed   atomic.Bool
	firstErr atomic.Pointer[error]

	hook     obs.Hook
	recovery RecoveryInfo

	// LSM engine state (engine == EngineLSM). The run list is mutated only
	// under ckptMu; runMu additionally guards the swap so accessors get a
	// consistent snapshot without blocking on a flush in progress.
	engine      string
	runMu       sync.RWMutex
	runs        []*sst.Reader // newest first
	runRefs     []RunRef      // manifest entries matching runs
	manifestGen uint64
	manifestSeq uint64 // WAL sequence watermark covered by the runs
	nextRunID   uint64
	lsmRetired  sst.Counters // counters of readers closed by compaction
	lsmPub      sst.Counters // counter values last pushed to Metrics
}

// ---------------------------------------------------------------------------
// File layout
// ---------------------------------------------------------------------------

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.lix", gen))
}

func walPath(dir string, gen uint64, seg int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x-%03d.lix", gen, seg))
}

// dirState is the generation inventory of a store directory.
type dirState struct {
	snaps     map[uint64]string
	wals      map[uint64]map[int]string
	manifests map[uint64]string
	runs      map[uint64]string
}

func scanDir(dir string) (dirState, error) {
	st := dirState{
		snaps:     map[uint64]string{},
		wals:      map[uint64]map[int]string{},
		manifests: map[uint64]string{},
		runs:      map[uint64]string{},
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return st, err
	}
	for _, e := range entries {
		name := e.Name()
		var gen uint64
		var seg int
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".lix"):
			if _, err := fmt.Sscanf(name, "snap-%016x.lix", &gen); err == nil {
				st.snaps[gen] = filepath.Join(dir, name)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".lix"):
			if _, err := fmt.Sscanf(name, "wal-%016x-%03d.lix", &gen, &seg); err == nil {
				if st.wals[gen] == nil {
					st.wals[gen] = map[int]string{}
				}
				st.wals[gen][seg] = filepath.Join(dir, name)
			}
		case strings.HasPrefix(name, "lsm-") && strings.HasSuffix(name, ".lix"):
			if _, err := fmt.Sscanf(name, "lsm-%016x.lix", &gen); err == nil {
				st.manifests[gen] = filepath.Join(dir, name)
			}
		case strings.HasPrefix(name, "sst-") && strings.HasSuffix(name, ".lix"):
			if _, err := fmt.Sscanf(name, "sst-%016x.lix", &gen); err == nil {
				st.runs[gen] = filepath.Join(dir, name)
			}
		}
	}
	return st, nil
}

func (st dirState) empty() bool {
	return len(st.snaps) == 0 && len(st.wals) == 0 && len(st.manifests) == 0 && len(st.runs) == 0
}

// resolveEngine picks the storage engine: the engine the directory's
// files belong to wins, a fresh directory follows the config.
func resolveEngine(st dirState, want string) string {
	if len(st.manifests) > 0 || len(st.runs) > 0 {
		return EngineLSM
	}
	if len(st.snaps) > 0 {
		return EngineSnapshot
	}
	if want == EngineLSM {
		return EngineLSM
	}
	return EngineSnapshot
}

// ---------------------------------------------------------------------------
// Open / Create
// ---------------------------------------------------------------------------

// Create initializes a fresh durable store at dir seeded with recs
// (sorted ascending, distinct keys; may be empty) and makes the seed
// durable with an initial checkpoint. It fails if dir already holds
// store files.
func Create(dir string, cfg Config, build BuildFunc, recs []core.KV) (*Durable, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	if !st.empty() {
		return nil, fmt.Errorf("store: %s already holds a durable store (use Open)", dir)
	}
	res, err := build(nil, recs)
	if err != nil {
		return nil, err
	}
	d, err := assemble(dir, cfg, res, cfg.Meta, 1)
	if err != nil {
		return nil, err
	}
	d.engine = resolveEngine(st, cfg.Engine)
	if d.engine == EngineLSM {
		if err := d.createLSM(recs); err != nil {
			d.Close()
			return nil, err
		}
	} else if err := WriteSnapshot(snapPath(dir, 1), &SnapshotData{Meta: d.meta, Recs: recs, LastSeq: 0}); err != nil {
		d.Close()
		return nil, err
	}
	d.start()
	return d, nil
}

// Open opens the durable store at dir, creating it empty if the
// directory holds no store files. Recovery loads the newest valid
// snapshot, then replays every WAL generation at or after it: segments
// are decoded and CRC-validated in parallel, torn or corrupt tails are
// truncated, and the committed records are merged by global sequence
// number before the index is rebuilt.
func Open(dir string, cfg Config, build BuildFunc) (*Durable, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st, err := scanDir(dir)
	if err != nil {
		return nil, err
	}

	engine := resolveEngine(st, cfg.Engine)

	// Newest valid snapshot wins; corrupt ones are skipped, not fatal.
	// Under the LSM engine the "snapshot" is the newest decodable manifest
	// with its runs merged into a base record set; a manifest whose run
	// files fail validation is a hard error (serving without them would
	// silently drop committed writes).
	var info RecoveryInfo
	var snap *SnapshotData
	var runReaders []*sst.Reader
	if engine == EngineLSM {
		snap, runReaders, err = openLSMBase(dir, st, &info)
		if err != nil {
			return nil, err
		}
	} else {
		for _, gen := range gensDesc(st.snaps) {
			s, err := ReadSnapshot(st.snaps[gen])
			if err != nil {
				info.CorruptSnapshots++
				continue
			}
			snap, info.SnapshotGen = s, gen
			break
		}
	}
	base, meta := []core.KV(nil), map[string]string(nil)
	if snap != nil {
		base, meta = snap.Recs, snap.Meta
		info.SnapshotRecs = len(snap.Recs)
	}

	// Decode every WAL segment of every generation >= the snapshot's, in
	// parallel (one goroutine per segment file).
	type segJob struct {
		gen  uint64
		seg  int
		path string
	}
	var jobs []segJob
	currentGen := info.SnapshotGen
	for gen, segs := range st.wals {
		if gen < info.SnapshotGen {
			continue // absorbed by the snapshot, left for GC
		}
		if gen > currentGen {
			currentGen = gen
		}
		for seg, path := range segs {
			jobs = append(jobs, segJob{gen, seg, path})
		}
	}
	if currentGen == 0 {
		currentGen = 1
	}
	segRecs := make([][]Record, len(jobs))
	segTrunc := make([]int64, len(jobs))
	segErr := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j segJob) {
			defer wg.Done()
			segRecs[i], segTrunc[i], segErr[i] = readSegment(j.path)
		}(i, j)
	}
	wg.Wait()
	var ops []Record
	for i := range jobs {
		if segErr[i] != nil {
			return nil, segErr[i]
		}
		ops = append(ops, segRecs[i]...)
		info.TruncatedBytes += segTrunc[i]
	}
	// Global commit order across segments and generations.
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Seq < ops[j].Seq })
	info.WALRecs = len(ops)

	recs := replayOver(base, ops)
	res, err := build(meta, recs)
	if err != nil {
		return nil, err
	}
	if meta == nil {
		meta = cfg.Meta
	}
	d, err := assemble(dir, cfg, res, meta, currentGen)
	if err != nil {
		for _, r := range runReaders {
			r.Close()
		}
		return nil, err
	}
	d.engine = engine
	if engine == EngineLSM {
		d.runs = runReaders
		if snap != nil {
			d.runRefs = snap.Runs
			d.manifestGen, d.manifestSeq = info.SnapshotGen, snap.LastSeq
		}
		d.nextRunID = nextRunID(st)
		info.Runs = len(runReaders)
		if st.empty() {
			// Fresh directory opened straight onto the LSM engine: make the
			// choice durable so a reopen without cfg.Engine resolves to it.
			if err := WriteSnapshot(manifestPath(dir, 1), &SnapshotData{Meta: d.meta, LastSeq: 0}); err != nil {
				d.Close()
				return nil, err
			}
			d.manifestGen = 1
		}
	}

	// Resume the sequence counter past everything recovered.
	last := uint64(0)
	if snap != nil {
		last = snap.LastSeq
	}
	for _, op := range ops {
		if op.Seq > last {
			last = op.Seq
		}
	}
	d.seq.Store(last)
	info.Elapsed = time.Since(start)
	d.recovery = info
	d.emit(obs.EvRecovery, info.WALRecs, fmt.Sprintf("gen=%d truncated=%dB", currentGen, info.TruncatedBytes))
	d.start()
	return d, nil
}

// assemble builds the Durable shell and opens (or creates) the current
// generation's WAL segments, truncating torn tails.
func assemble(dir string, cfg Config, res BuildResult, meta map[string]string, gen uint64) (*Durable, error) {
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = DefaultSyncInterval
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = DefaultCheckpointEvery
	}
	segments := res.Segments
	if segments <= 0 {
		segments = 1
	}
	if !res.ConcurrentReads && segments != 1 {
		return nil, fmt.Errorf("store: non-concurrent index needs exactly 1 segment, got %d", segments)
	}
	if meta == nil {
		meta = map[string]string{}
	}
	d := &Durable{
		dir: dir, cfg: cfg,
		ix: res.Index, route: res.Route, segments: segments,
		concReads: res.ConcurrentReads, meta: meta,
		gen:    gen,
		segMu:  make([]sync.RWMutex, segments),
		ckptCh: make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	d.batchLookup, _ = res.Index.(core.BatchLookuper)
	d.batchLookupInto, _ = res.Index.(core.BatchLookuperInto)
	d.batchInsert, _ = res.Index.(core.BatchInserter)
	d.batchDelete, _ = res.Index.(core.BatchDeleter)
	if cfg.Metrics != nil {
		d.hook.SetRecorder(cfg.Metrics)
	}
	wals, err := d.openGeneration(gen)
	if err != nil {
		return nil, err
	}
	d.wals = wals
	return d, nil
}

// openGeneration opens or creates the append handles for generation gen.
// Recovery already consumed their committed records via readSegment;
// OpenWAL re-validates and truncates any torn tail so appends land after
// the last committed frame.
func (d *Durable) openGeneration(gen uint64) ([]*WAL, error) {
	wals := make([]*WAL, d.segments)
	var fsyncNS *obs.Histogram
	if d.cfg.Metrics != nil {
		fsyncNS = &d.cfg.Metrics.FsyncNS
	}
	for seg := range wals {
		w, _, _, err := OpenWAL(walPath(d.dir, gen, seg), gen, seg, &d.hook, fsyncNS)
		if err != nil {
			for _, open := range wals[:seg] {
				open.Close()
			}
			return nil, err
		}
		wals[seg] = w
	}
	return wals, nil
}

// replayOver applies ops (sorted by Seq) over the sorted base record set
// and returns the resulting sorted record set.
func replayOver(base []core.KV, ops []Record) []core.KV {
	if len(ops) == 0 {
		return base
	}
	type state struct {
		val core.Value
		del bool
	}
	overlay := make(map[core.Key]state, len(ops))
	for _, op := range ops {
		overlay[op.Key] = state{val: op.Val, del: op.Op == OpDelete}
	}
	keys := make([]core.Key, 0, len(overlay))
	for k := range overlay {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	out := make([]core.KV, 0, len(base)+len(keys))
	bi := 0
	for _, k := range keys {
		for bi < len(base) && base[bi].Key < k {
			out = append(out, base[bi])
			bi++
		}
		if bi < len(base) && base[bi].Key == k {
			bi++ // superseded by the overlay
		}
		if s := overlay[k]; !s.del {
			out = append(out, core.KV{Key: k, Value: s.val})
		}
	}
	return append(out, base[bi:]...)
}

func gensDesc(m map[uint64]string) []uint64 {
	out := make([]uint64, 0, len(m))
	for g := range m {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// start launches the background flusher and checkpointer.
func (d *Durable) start() {
	if d.cfg.Fsync == SyncInterval {
		d.bg.Add(1)
		go func() {
			defer d.bg.Done()
			t := time.NewTicker(d.cfg.SyncInterval)
			defer t.Stop()
			for {
				select {
				case <-d.stop:
					return
				case <-t.C:
					d.Sync()
				}
			}
		}()
	}
	if d.cfg.CheckpointEvery > 0 {
		d.bg.Add(1)
		go func() {
			defer d.bg.Done()
			for {
				select {
				case <-d.stop:
					return
				case <-d.ckptCh:
					if err := d.Checkpoint(); err != nil {
						d.fail(err)
					}
				}
			}
		}()
	}
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

// Dir returns the store directory.
func (d *Durable) Dir() string { return d.dir }

// Gen returns the current file generation.
func (d *Durable) Gen() uint64 {
	d.stateMu.RLock()
	defer d.stateMu.RUnlock()
	return d.gen
}

// Segments returns the WAL segment count.
func (d *Durable) Segments() int { return d.segments }

// Meta returns the persisted rebuild-parameter map.
func (d *Durable) Meta() map[string]string {
	out := make(map[string]string, len(d.meta))
	for k, v := range d.meta {
		out[k] = v
	}
	return out
}

// RecoveryInfo reports what Open reconstructed (zero value after Create).
func (d *Durable) RecoveryInfo() RecoveryInfo { return d.recovery }

// Fsyncs returns the total fsync count across the current generation's
// segments.
func (d *Durable) Fsyncs() uint64 {
	d.stateMu.RLock()
	defer d.stateMu.RUnlock()
	var n uint64
	for _, w := range d.wals {
		n += w.Fsyncs()
	}
	return n
}

// Err returns the first unrecoverable I/O error, if any. After an error
// the store stops accepting mutations (reads still serve from memory).
func (d *Durable) Err() error {
	if p := d.firstErr.Load(); p != nil {
		return *p
	}
	return nil
}

// SetObserver routes structural events (checkpoints, WAL flushes,
// recovery) into r; nil detaches.
func (d *Durable) SetObserver(r obs.Recorder) { d.hook.SetRecorder(r) }

func (d *Durable) fail(err error) {
	if err == nil {
		return
	}
	d.firstErr.CompareAndSwap(nil, &err)
}

func (d *Durable) emit(t obs.EventType, n int, detail string) {
	d.hook.Emit(t, n, detail)
}

func (d *Durable) seg(k core.Key) int {
	if d.route == nil {
		return 0
	}
	if s := d.route(k); s >= 0 && s < d.segments {
		return s
	}
	return 0
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

// Get returns the value stored for k.
func (d *Durable) Get(k core.Key) (core.Value, bool) {
	if d.concReads {
		return d.ix.Get(k)
	}
	d.segMu[0].RLock()
	defer d.segMu[0].RUnlock()
	return d.ix.Get(k)
}

// Range calls fn for every record with lo <= key <= hi in ascending
// order; fn returning false stops the scan.
func (d *Durable) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	if d.concReads {
		return d.ix.Range(lo, hi, fn)
	}
	d.segMu[0].RLock()
	defer d.segMu[0].RUnlock()
	return d.ix.Range(lo, hi, fn)
}

// Len returns the number of records.
func (d *Durable) Len() int {
	if d.concReads {
		return d.ix.Len()
	}
	d.segMu[0].RLock()
	defer d.segMu[0].RUnlock()
	return d.ix.Len()
}

// Stats reports the wrapped index's structure statistics with the WAL
// footprint added.
func (d *Durable) Stats() core.Stats {
	var st core.Stats
	if d.concReads {
		st = d.ix.Stats()
	} else {
		d.segMu[0].RLock()
		st = d.ix.Stats()
		d.segMu[0].RUnlock()
	}
	d.stateMu.RLock()
	for _, w := range d.wals {
		st.IndexBytes += int(w.Size())
	}
	d.stateMu.RUnlock()
	st.Name = "durable(" + st.Name + ")"
	return st
}

// SearchRange collects every record with lo <= key <= hi in ascending
// key order, forwarding the wrapped index's RangeSearcher capability (a
// sharded backend answers with its parallel cross-shard fan-out). The
// result is always non-nil.
func (d *Durable) SearchRange(lo, hi core.Key) []core.KV {
	if d.concReads {
		return core.CollectRange(d.ix, lo, hi)
	}
	d.segMu[0].RLock()
	defer d.segMu[0].RUnlock()
	return core.CollectRange(d.ix, lo, hi)
}

// Unwrap returns the wrapped in-memory index (for capability probing and
// diagnostics; mutating it directly bypasses the WAL).
func (d *Durable) Unwrap() MutableIndex { return d.ix }

// LookupBatch resolves keys in one pass, delegating to the wrapped
// index's batched path when it has one.
func (d *Durable) LookupBatch(keys []core.Key) ([]core.Value, []bool) {
	if d.batchLookup != nil && d.concReads {
		return d.batchLookup.LookupBatch(keys)
	}
	vals := make([]core.Value, len(keys))
	oks := make([]bool, len(keys))
	for i, k := range keys {
		vals[i], oks[i] = d.Get(k)
	}
	return vals, oks
}

// LookupBatchInto is the allocation-free batched read path: answers are
// written into the caller's vals and oks slices, delegating to the
// wrapped index's zero-alloc path when it has one. Reads never touch
// the WAL, so the durable layer adds nothing but the forward.
func (d *Durable) LookupBatchInto(keys []core.Key, vals []core.Value, oks []bool) {
	if d.batchLookupInto != nil && d.concReads {
		d.batchLookupInto.LookupBatchInto(keys, vals, oks)
		return
	}
	for i, k := range keys {
		vals[i], oks[i] = d.Get(k)
	}
}

// LookupBatchSpan is the span-aware read path: the durable layer adds no
// stages of its own on reads (no WAL, no fsync), so the whole in-memory
// batch is attributed to the shard stage.
func (d *Durable) LookupBatchSpan(keys []core.Key, sp *trace.Span) ([]core.Value, []bool) {
	if sp == nil {
		return d.LookupBatch(keys)
	}
	t0 := time.Now()
	vals, oks := d.LookupBatch(keys)
	sp.Add(trace.StageShard, time.Since(t0))
	return vals, oks
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

// Put durably upserts (k, v): the record is framed into its WAL segment
// and applied in memory before Put returns; under SyncAlways it is also
// fsynced (group commit batches concurrent writers into one fsync).
func (d *Durable) Put(k core.Key, v core.Value) error {
	if err := d.Err(); err != nil {
		return err
	}
	d.stateMu.RLock()
	seg := d.seg(k)
	w := d.wals[seg]
	d.segMu[seg].Lock()
	rec := Record{Seq: d.seq.Add(1), Op: OpInsert, Key: k, Val: v}
	off, err := w.Append(rec)
	if err == nil {
		d.ix.Insert(k, v)
	}
	d.segMu[seg].Unlock()
	d.stateMu.RUnlock()
	if err != nil {
		d.fail(err)
		return err
	}
	if d.cfg.Fsync == SyncAlways {
		if err := w.SyncTo(off); err != nil {
			d.fail(err)
			return err
		}
	}
	d.bumpCheckpoint(1)
	return nil
}

// Del durably removes k, reporting whether it was present.
func (d *Durable) Del(k core.Key) (bool, error) {
	if err := d.Err(); err != nil {
		return false, err
	}
	d.stateMu.RLock()
	seg := d.seg(k)
	w := d.wals[seg]
	d.segMu[seg].Lock()
	rec := Record{Seq: d.seq.Add(1), Op: OpDelete, Key: k}
	off, err := w.Append(rec)
	ok := false
	if err == nil {
		ok = d.ix.Delete(k)
	}
	d.segMu[seg].Unlock()
	d.stateMu.RUnlock()
	if err != nil {
		d.fail(err)
		return false, err
	}
	if d.cfg.Fsync == SyncAlways {
		if err := w.SyncTo(off); err != nil {
			d.fail(err)
			return ok, err
		}
	}
	d.bumpCheckpoint(1)
	return ok, nil
}

// Insert implements MutableIndex. I/O errors latch into Err and turn
// further mutations into no-ops; callers that need the error use Put.
func (d *Durable) Insert(k core.Key, v core.Value) { d.Put(k, v) }

// Delete implements MutableIndex; see Insert for error handling.
func (d *Durable) Delete(k core.Key) bool {
	ok, _ := d.Del(k)
	return ok
}

// InsertBatch durably upserts recs: records are grouped by WAL segment,
// each group is framed as one contiguous append and applied under its
// segment lock (groups proceed in parallel), then each touched segment
// is group-committed once under SyncAlways.
func (d *Durable) InsertBatch(recs []core.KV) { d.insertBatch(recs, nil) }

// InsertBatchSpan is InsertBatch with per-stage attribution: WAL frame
// encode+append time lands in the wal stage, the in-memory apply in the
// shard stage, and the group commit in the fsync stage. Because segment
// groups run in parallel, each stage is the *summed* time across
// segments and may exceed the batch's wall time.
func (d *Durable) InsertBatchSpan(recs []core.KV, sp *trace.Span) { d.insertBatch(recs, sp) }

func (d *Durable) insertBatch(recs []core.KV, sp *trace.Span) {
	if len(recs) == 0 || d.Err() != nil {
		return
	}
	d.stateMu.RLock()
	groups := make(map[int][]core.KV)
	for _, r := range recs {
		seg := d.seg(r.Key)
		groups[seg] = append(groups[seg], r)
	}
	var wg sync.WaitGroup
	offs := make([]int64, d.segments)
	for seg, group := range groups {
		wg.Add(1)
		go func(seg int, group []core.KV) {
			defer wg.Done()
			w := d.wals[seg]
			d.segMu[seg].Lock()
			var walStart time.Time
			if sp != nil {
				walStart = time.Now()
			}
			wrecs := make([]Record, len(group))
			for i, r := range group {
				wrecs[i] = Record{Seq: d.seq.Add(1), Op: OpInsert, Key: r.Key, Val: r.Value}
			}
			off, err := w.Append(wrecs...)
			if sp != nil {
				sp.Add(trace.StageWAL, time.Since(walStart))
			}
			if err == nil {
				var applyStart time.Time
				if sp != nil {
					applyStart = time.Now()
				}
				if d.batchInsert != nil {
					d.batchInsert.InsertBatch(group)
				} else {
					for _, r := range group {
						d.ix.Insert(r.Key, r.Value)
					}
				}
				if sp != nil {
					sp.Add(trace.StageShard, time.Since(applyStart))
				}
				offs[seg] = off
			} else {
				d.fail(err)
			}
			d.segMu[seg].Unlock()
		}(seg, group)
	}
	wg.Wait()
	if d.cfg.Fsync == SyncAlways {
		var fsyncStart time.Time
		if sp != nil {
			fsyncStart = time.Now()
		}
		for seg := range groups {
			if offs[seg] > 0 {
				if err := d.wals[seg].SyncTo(offs[seg]); err != nil {
					d.fail(err)
				}
			}
		}
		if sp != nil {
			sp.Add(trace.StageFsync, time.Since(fsyncStart))
		}
	}
	d.stateMu.RUnlock()
	d.bumpCheckpoint(len(recs))
}

// DeleteBatch durably removes keys with the same segment-grouped WAL
// framing as InsertBatch: per touched segment one contiguous frame group,
// one group-committed fsync under SyncAlways. oks[i] reports whether
// keys[i] was present, with sequential (first-wins on duplicates)
// semantics inside the batch.
func (d *Durable) DeleteBatch(keys []core.Key) []bool { return d.deleteBatch(keys, nil) }

// DeleteBatchSpan is DeleteBatch with per-stage attribution; see
// InsertBatchSpan for the stage semantics.
func (d *Durable) DeleteBatchSpan(keys []core.Key, sp *trace.Span) []bool {
	return d.deleteBatch(keys, sp)
}

func (d *Durable) deleteBatch(keys []core.Key, sp *trace.Span) []bool {
	oks := make([]bool, len(keys))
	if len(keys) == 0 || d.Err() != nil {
		return oks
	}
	d.stateMu.RLock()
	groups := make(map[int][]int)
	for i, k := range keys {
		seg := d.seg(k)
		groups[seg] = append(groups[seg], i)
	}
	var wg sync.WaitGroup
	offs := make([]int64, d.segments)
	for seg, idxs := range groups {
		wg.Add(1)
		go func(seg int, idxs []int) {
			defer wg.Done()
			w := d.wals[seg]
			d.segMu[seg].Lock()
			var walStart time.Time
			if sp != nil {
				walStart = time.Now()
			}
			wrecs := make([]Record, len(idxs))
			for j, i := range idxs {
				wrecs[j] = Record{Seq: d.seq.Add(1), Op: OpDelete, Key: keys[i]}
			}
			off, err := w.Append(wrecs...)
			if sp != nil {
				sp.Add(trace.StageWAL, time.Since(walStart))
			}
			if err == nil {
				var applyStart time.Time
				if sp != nil {
					applyStart = time.Now()
				}
				if d.batchDelete != nil {
					group := make([]core.Key, len(idxs))
					for j, i := range idxs {
						group[j] = keys[i]
					}
					for j, ok := range d.batchDelete.DeleteBatch(group) {
						oks[idxs[j]] = ok
					}
				} else {
					for _, i := range idxs {
						oks[i] = d.ix.Delete(keys[i])
					}
				}
				if sp != nil {
					sp.Add(trace.StageShard, time.Since(applyStart))
				}
				offs[seg] = off
			} else {
				d.fail(err)
			}
			d.segMu[seg].Unlock()
		}(seg, idxs)
	}
	wg.Wait()
	if d.cfg.Fsync == SyncAlways {
		var fsyncStart time.Time
		if sp != nil {
			fsyncStart = time.Now()
		}
		for seg := range groups {
			if offs[seg] > 0 {
				if err := d.wals[seg].SyncTo(offs[seg]); err != nil {
					d.fail(err)
				}
			}
		}
		if sp != nil {
			sp.Add(trace.StageFsync, time.Since(fsyncStart))
		}
	}
	d.stateMu.RUnlock()
	d.bumpCheckpoint(len(keys))
	return oks
}

func (d *Durable) bumpCheckpoint(n int) {
	if d.cfg.CheckpointEvery <= 0 {
		return
	}
	if d.sinceCkpt.Add(int64(n)) >= int64(d.cfg.CheckpointEvery) {
		select {
		case d.ckptCh <- struct{}{}:
		default:
		}
	}
}

// ---------------------------------------------------------------------------
// Checkpoint / lifecycle
// ---------------------------------------------------------------------------

// Checkpoint rotates to the next generation: the record set is captured
// under a consistent cut while fresh WAL segments are swapped in, the
// snapshot is written to a temp file and atomically renamed into place,
// and only then are the previous generation's files removed. A crash at
// any point leaves either the old snapshot plus complete old WAL, or the
// new snapshot — never a state that loses committed records.
func (d *Durable) Checkpoint() error {
	if err := d.Err(); err != nil {
		return err
	}
	if d.engine == EngineLSM {
		return d.flushLSM()
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()

	// Consistent cut: writers drain, the record set and sequence number
	// are captured, and fresh segments take over before writers resume.
	d.stateMu.Lock()
	newGen := d.gen + 1
	newWals, err := d.openGeneration(newGen)
	if err != nil {
		d.stateMu.Unlock()
		return err
	}
	recs := make([]core.KV, 0, d.ix.Len())
	d.ix.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
		recs = append(recs, core.KV{Key: k, Value: v})
		return true
	})
	lastSeq := d.seq.Load()
	oldGen, oldWals := d.gen, d.wals
	d.gen, d.wals = newGen, newWals
	d.sinceCkpt.Store(0)
	d.stateMu.Unlock()

	// The old log must be fully durable before its records move into the
	// snapshot; Close fsyncs, after which in-flight SyncTo calls from
	// writers that raced the rotation resolve as already-covered.
	for _, w := range oldWals {
		if err := w.Close(); err != nil {
			d.fail(err)
			return err
		}
	}
	if err := WriteSnapshot(snapPath(d.dir, newGen), &SnapshotData{
		Meta: d.meta, Recs: recs, LastSeq: lastSeq,
	}); err != nil {
		d.fail(err)
		return err
	}
	// The new snapshot is durable: generations before it are garbage.
	st, err := scanDir(d.dir)
	if err == nil {
		for gen, path := range st.snaps {
			if gen < newGen {
				os.Remove(path)
			}
		}
		for gen, segs := range st.wals {
			if gen <= oldGen {
				for _, path := range segs {
					os.Remove(path)
				}
			}
		}
		syncDir(d.dir)
	}
	d.emit(obs.EvCheckpoint, len(recs), fmt.Sprintf("gen=%d", newGen))
	return nil
}

// Sync fsyncs every WAL segment (a durability barrier under SyncInterval
// and SyncNever).
func (d *Durable) Sync() error {
	d.stateMu.RLock()
	wals := d.wals
	d.stateMu.RUnlock()
	for _, w := range wals {
		if err := w.SyncTo(w.Size()); err != nil {
			d.fail(err)
			return err
		}
	}
	return nil
}

// Close stops background work, makes the WAL durable and closes the
// files. It does not checkpoint: the next Open replays the log.
func (d *Durable) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(d.stop)
	d.bg.Wait()
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	var first error
	for _, w := range d.wals {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	d.closeRuns()
	return first
}

// Crash simulates a process kill: background work stops and the files
// are closed without any final fsync or checkpoint. State that was not
// yet synced is exactly what a real crash would lose. The store is
// unusable afterwards; reopen the directory with Open.
func (d *Durable) Crash() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(d.stop)
	d.bg.Wait()
	d.stateMu.Lock()
	defer d.stateMu.Unlock()
	var first error
	for _, w := range d.wals {
		if err := w.Crash(); err != nil && first == nil {
			first = err
		}
	}
	d.closeRuns()
	return first
}

// closeRuns closes the LSM run readers (no-op for the snapshot engine).
// Run files are immutable, so closing loses nothing.
func (d *Durable) closeRuns() {
	d.runMu.Lock()
	defer d.runMu.Unlock()
	for _, r := range d.runs {
		r.Close()
	}
	d.runs, d.runRefs = nil, nil
}
