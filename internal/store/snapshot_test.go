package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

func testKVs(n int) []core.KV {
	out := make([]core.KV, n)
	for i := range out {
		out[i] = core.KV{Key: core.Key(i * 3), Value: core.Value(i * 11)}
	}
	return out
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.lix")
	in := &SnapshotData{
		Meta:    map[string]string{"kind": "btree", "shards": "4"},
		Recs:    testKVs(1000),
		LastSeq: 42,
	}
	if err := WriteSnapshot(path, in); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := ReadSnapshot(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if out.LastSeq != 42 || len(out.Recs) != 1000 {
		t.Fatalf("round trip: seq=%d recs=%d", out.LastSeq, len(out.Recs))
	}
	for i := range in.Recs {
		if out.Recs[i] != in.Recs[i] {
			t.Fatalf("record %d: %v != %v", i, out.Recs[i], in.Recs[i])
		}
	}
	if out.Meta["kind"] != "btree" || out.Meta["shards"] != "4" {
		t.Fatalf("meta %v", out.Meta)
	}
}

func TestSnapshotEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.lix")
	if err := WriteSnapshot(path, &SnapshotData{}); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := ReadSnapshot(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(out.Recs) != 0 || len(out.Meta) != 0 || out.LastSeq != 0 {
		t.Fatalf("empty snapshot decoded as %+v", out)
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	s := &SnapshotData{
		Meta: map[string]string{"b": "2", "a": "1", "c": "3"},
		Recs: testKVs(10),
	}
	if !bytes.Equal(encodeSnapshot(s), encodeSnapshot(s)) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.lix")
	if err := WriteSnapshot(path, &SnapshotData{Recs: testKVs(100), LastSeq: 7}); err != nil {
		t.Fatal(err)
	}
	clean, _ := os.ReadFile(path)

	cases := map[string]func([]byte) []byte{
		"truncated":      func(b []byte) []byte { return b[:len(b)-9] },
		"missing footer": func(b []byte) []byte { return b[:len(b)-8-9-4] },
		"flipped byte":   func(b []byte) []byte { b[len(snapMagic)+40] ^= 1; return b },
		"bad magic":      func(b []byte) []byte { b[0] = 'X'; return b },
		"empty":          func(b []byte) []byte { return nil },
	}
	for name, mut := range cases {
		data := mut(append([]byte(nil), clean...))
		if _, err := DecodeSnapshot(data); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
}

func TestSnapshotRejectsUnsortedRecords(t *testing.T) {
	recs := []core.KV{{Key: 5, Value: 1}, {Key: 3, Value: 2}}
	data := encodeSnapshot(&SnapshotData{Recs: recs})
	if _, err := DecodeSnapshot(data); err == nil || !strings.Contains(err.Error(), "ascending") {
		t.Fatalf("unsorted records accepted: %v", err)
	}
}

func TestWriteSnapshotLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(filepath.Join(dir, "snap.lix"), &SnapshotData{Recs: testKVs(5)}); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 || entries[0].Name() != "snap.lix" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want just snap.lix", names)
	}
}
