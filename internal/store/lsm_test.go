package store

import (
	"math/rand"
	"os"
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/sst"
)

// seedOrphan writes a small valid run file at path, as a crash between a
// flush's run write and its manifest publication would leave behind.
func seedOrphan(t *testing.T, path string) {
	t.Helper()
	if err := sst.WriteFile(path, &sst.FileData{Live: []core.KV{{Key: 1, Value: 1}}, Seq: 1}); err != nil {
		t.Fatal(err)
	}
}

func lsmCfg() Config {
	return Config{Fsync: SyncNever, CheckpointEvery: -1, Engine: EngineLSM}
}

func TestLSMFlushReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, lsmCfg(), memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Engine() != EngineLSM {
		t.Fatalf("engine = %q, want lsm", d.Engine())
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := d.Put(core.Key(i*2), core.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := d.Del(core.Key(i * 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// The flush retired the old WAL generation: checkpointing IS the WAL
	// truncation point.
	st, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for gen := range st.wals {
		if gen <= 1 {
			t.Fatalf("WAL generation %d survived the flush", gen)
		}
	}
	if len(st.manifests) != 1 {
		t.Fatalf("manifests on disk: %d, want 1", len(st.manifests))
	}
	ls := d.LSMStats()
	if ls.Runs != 1 || ls.LiveRecs != n-50 {
		t.Fatalf("LSMStats = %+v, want 1 run with %d live records", ls, n-50)
	}
	d.Close()

	// Reopen without Engine in the config: the directory's files win.
	d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Engine() != EngineLSM {
		t.Fatalf("reopened engine = %q, want lsm", d2.Engine())
	}
	if ri := d2.RecoveryInfo(); ri.Runs != 1 || ri.SnapshotRecs != n-50 {
		t.Fatalf("RecoveryInfo = %+v, want 1 run / %d base records", ri, n-50)
	}
	if d2.Len() != n-50 {
		t.Fatalf("recovered %d records, want %d", d2.Len(), n-50)
	}
	for i := 0; i < n; i++ {
		k := core.Key(i * 2)
		v, ok := d2.Get(k)
		if k%4 == 0 && k < 200 {
			if ok {
				t.Fatalf("deleted key %d resurrected with %d", k, v)
			}
		} else if !ok || v != core.Value(i) {
			t.Fatalf("key %d: got (%d,%v), want %d", k, v, ok, i)
		}
	}
}

// TestLSMFlushIsIncremental pins the tentpole property: a checkpoint
// writes only the WAL delta since the previous one, not the dataset.
func TestLSMFlushIsIncremental(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, lsmCfg(), memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const base = 20000
	for i := 0; i < base; i++ {
		d.Put(core.Key(i), core.Value(i))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	const delta = 10
	for i := 0; i < delta; i++ {
		d.Put(core.Key(base+i), core.Value(i))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	runs := d.Runs()
	if len(runs) != 2 {
		t.Fatalf("run count = %d, want 2", len(runs))
	}
	if got := runs[0].Live() + runs[0].Dead(); got != delta {
		t.Fatalf("second flush wrote %d records, want the %d-record delta", got, delta)
	}
	if runs[1].Live() != base {
		t.Fatalf("base run holds %d records, want %d", runs[1].Live(), base)
	}
	// An empty delta must not mint a new run.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Runs()); got != 2 {
		t.Fatalf("empty flush changed run count to %d", got)
	}
}

func TestLSMCompactionBoundsRuns(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewMetrics("t")
	cfg := lsmCfg()
	cfg.Metrics = m
	d, err := Open(dir, cfg, memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(11))
	expect := map[core.Key]core.Value{}
	const batches, perBatch = 12, 300
	for b := 0; b < batches; b++ {
		for i := 0; i < perBatch; i++ {
			k := core.Key(rng.Intn(5000) * 2)
			if rng.Intn(5) == 0 {
				d.Del(k)
				delete(expect, k)
			} else {
				v := core.Value(rng.Uint64())
				d.Put(k, v)
				expect[k] = v
			}
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	ls := d.LSMStats()
	if ls.Runs > compactMinRuns {
		t.Fatalf("compaction let the run list grow to %d (> %d)", ls.Runs, compactMinRuns)
	}
	if m.Events.Count(obs.EvCompaction) == 0 {
		t.Fatal("no EvCompaction events emitted across 12 flushes")
	}
	if m.LSMRuns.Load() != int64(ls.Runs) {
		t.Fatalf("lsm_runs gauge = %d, runs = %d", m.LSMRuns.Load(), ls.Runs)
	}
	if m.LSMRunBytes.Load() != ls.RunBytes || ls.RunBytes == 0 {
		t.Fatalf("lsm_run_bytes gauge = %d, want %d (nonzero)", m.LSMRunBytes.Load(), ls.RunBytes)
	}
	if m.FilterBytes.Load() == 0 {
		t.Fatal("lbf_filter_bytes gauge not published")
	}

	// In-memory state matches the model, and so does a cold reopen.
	if d.Len() != len(expect) {
		t.Fatalf("Len = %d, model has %d", d.Len(), len(expect))
	}
	d.Close()
	d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != len(expect) {
		t.Fatalf("reopened Len = %d, model has %d", d2.Len(), len(expect))
	}
	for k, v := range expect {
		if got, ok := d2.Get(k); !ok || got != v {
			t.Fatalf("key %d: got (%d,%v), want %d", k, got, ok, v)
		}
	}
}

// TestLSMFilterSkips pins the acceptance criterion: on point lookups of
// absent keys, the per-run learned filters skip at least 90% of the run
// probes that reach them.
func TestLSMFilterSkips(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, lsmCfg(), memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rng := rand.New(rand.NewSource(21))
	for b := 0; b < 3; b++ {
		for i := 0; i < 4000; i++ {
			d.Put(core.Key(rng.Uint64())&^1, core.Value(i)) // even keys only
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	tiers := d.Tiers()
	if len(tiers.Runs()) < 2 {
		t.Fatalf("want >= 2 runs, have %d", len(tiers.Runs()))
	}
	for i := 0; i < 20000; i++ {
		k := core.Key(rng.Uint64()) | 1 // odd = absent everywhere
		if _, ok, err := tiers.Get(k); err != nil {
			t.Fatal(err)
		} else if ok {
			t.Fatalf("absent key %d found", k)
		}
	}
	c := d.LSMStats().Counters
	consulted := c.Probes - c.RangeSkips
	if consulted == 0 {
		t.Fatal("no probes consulted a filter")
	}
	if rate := float64(c.FilterSkips) / float64(consulted); rate < 0.9 {
		t.Fatalf("filters skipped %.1f%% of absent-key run probes, want >= 90%% (%+v)", 100*rate, c)
	}
}

// TestLSMCrashSweep is the crash-injection suite for the LSM engine:
// torn WAL tails recover the committed prefix over the run base, damaged
// run or manifest files turn into reopen errors (committed answer or
// error — never a silently wrong answer), and crash debris from an
// interrupted flush (rotated WAL, orphaned run, stale temp manifest) is
// recovered around and garbage-collected.
func TestLSMCrashSweep(t *testing.T) {
	const base, extra = 300, 120
	// build populates dir with a flushed base of even keys 0..2(base-1)
	// and extra unflushed WAL inserts of keys base*2..(base+extra-1)*2.
	build := func(t *testing.T, dir string) {
		d, err := Open(dir, lsmCfg(), memBuild(1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < base; i++ {
			d.Put(core.Key(i*2), core.Value(i+1))
		}
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		for i := base; i < base+extra; i++ {
			d.Put(core.Key(i*2), core.Value(i+1))
		}
		if err := d.Crash(); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("torn WAL tail recovers committed prefix", func(t *testing.T) {
		rng := rand.New(rand.NewSource(31))
		for trial := 0; trial < 10; trial++ {
			dir := t.TempDir()
			build(t, dir)
			path := walPath(dir, 2, 0) // generation after the flush
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			cut := rng.Intn(len(data) + 1)
			os.WriteFile(path, data[:cut], 0o644)
			want := base + committedAt(cut)

			d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
			if err != nil {
				t.Fatalf("trial %d cut %d: recovery aborted: %v", trial, cut, err)
			}
			if d.Len() != want {
				t.Fatalf("trial %d cut %d: recovered %d, want %d", trial, cut, d.Len(), want)
			}
			for i := 0; i < want; i++ {
				if v, ok := d.Get(core.Key(i * 2)); !ok || v != core.Value(i+1) {
					t.Fatalf("trial %d: committed key %d lost (%d,%v)", trial, i*2, v, ok)
				}
			}
			d.Close()
		}
	})

	t.Run("bit flip in a run file is a reopen error", func(t *testing.T) {
		rng := rand.New(rand.NewSource(32))
		for trial := 0; trial < 8; trial++ {
			dir := t.TempDir()
			build(t, dir)
			st, _ := scanDir(dir)
			for _, path := range st.runs {
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				data[rng.Intn(len(data))] ^= 1 << uint(rng.Intn(8))
				os.WriteFile(path, data, 0o644)
			}
			if d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1)); err == nil {
				d.Close()
				t.Fatalf("trial %d: reopen served a store with a corrupt run", trial)
			}
		}
	})

	t.Run("bit flip in the manifest is a reopen error", func(t *testing.T) {
		rng := rand.New(rand.NewSource(33))
		for trial := 0; trial < 8; trial++ {
			dir := t.TempDir()
			build(t, dir)
			st, _ := scanDir(dir)
			for _, path := range st.manifests {
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				data[rng.Intn(len(data))] ^= 1 << uint(rng.Intn(8))
				os.WriteFile(path, data, 0o644)
			}
			if d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1)); err == nil {
				d.Close()
				t.Fatalf("trial %d: reopen served a store with a corrupt manifest", trial)
			}
		}
	})

	t.Run("truncated run file is a reopen error", func(t *testing.T) {
		dir := t.TempDir()
		build(t, dir)
		st, _ := scanDir(dir)
		for _, path := range st.runs {
			data, _ := os.ReadFile(path)
			os.WriteFile(path, data[:len(data)-100], 0o644)
		}
		if d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1)); err == nil {
			d.Close()
			t.Fatal("reopen served a store with a truncated run")
		}
	})

	t.Run("interrupted flush debris is recovered around", func(t *testing.T) {
		dir := t.TempDir()
		build(t, dir)
		// Simulate a crash mid-flush: the WAL rotated to generation 3 and
		// the delta run hit disk, but the manifest was never published. A
		// stale manifest temp file lingers too.
		if err := os.WriteFile(walPath(dir, 3, 0), walHeader(3, 0), 0o644); err != nil {
			t.Fatal(err)
		}
		// An orphaned run under an unreferenced ID and a stale manifest
		// temp file linger from the interrupted flush.
		if err := WriteSnapshot(manifestPath(dir, 99)+".tmp-123", &SnapshotData{}); err != nil {
			t.Fatal(err)
		}
		orphanRun := runPath(dir, 77)
		seedOrphan(t, orphanRun)

		d0, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
		if err != nil {
			t.Fatal(err)
		}
		want := base + extra
		if d0.Len() != want {
			t.Fatalf("recovered %d records, want %d", d0.Len(), want)
		}
		// The next flush folds the lingering generations and clears debris:
		// one manifest on disk, the orphan run gone, IDs not reused.
		if err := d0.Put(core.Key(999999), 1); err != nil {
			t.Fatal(err)
		}
		if err := d0.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		st, _ := scanDir(dir)
		if len(st.manifests) != 1 {
			t.Fatalf("%d manifests after flush, want 1", len(st.manifests))
		}
		if _, err := os.Stat(orphanRun); !os.IsNotExist(err) {
			t.Fatal("orphaned run survived the flush GC")
		}
		for id := range st.runs {
			if id <= 77 && id != 1 {
				t.Fatalf("run ID %d at or below the orphan's was reused", id)
			}
		}
		d0.Close()
		d1, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
		if err != nil {
			t.Fatal(err)
		}
		defer d1.Close()
		if d1.Len() != want+1 {
			t.Fatalf("final reopen: %d records, want %d", d1.Len(), want+1)
		}
	})
}

// TestLSMTombstoneShadowsAcrossReopen: a delete flushed as a tombstone
// must keep shadowing the older run's record across reopens and full
// compactions.
func TestLSMTombstoneShadowsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, lsmCfg(), memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		d.Put(core.Key(i), core.Value(i+1))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Del(7)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ls := d.LSMStats()
	if ls.Tombstones != 1 {
		t.Fatalf("tombstones = %d, want 1", ls.Tombstones)
	}
	d.Close()

	d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, ok := d2.Get(7); ok {
		t.Fatal("tombstoned key resurrected on reopen")
	}
	if d2.Len() != 99 {
		t.Fatalf("Len = %d, want 99", d2.Len())
	}
}
