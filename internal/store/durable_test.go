package store

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
)

// memIndex is a locked ordered-map index for exercising the durable
// wrapper without dragging a real index kind into the package's tests.
type memIndex struct {
	mu sync.RWMutex
	m  map[core.Key]core.Value
}

func newMemIndex(recs []core.KV) *memIndex {
	ix := &memIndex{m: make(map[core.Key]core.Value, len(recs))}
	for _, r := range recs {
		ix.m[r.Key] = r.Value
	}
	return ix
}

func (ix *memIndex) Get(k core.Key) (core.Value, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	v, ok := ix.m[k]
	return v, ok
}

func (ix *memIndex) Range(lo, hi core.Key, fn func(core.Key, core.Value) bool) int {
	ix.mu.RLock()
	keys := make([]core.Key, 0, len(ix.m))
	for k := range ix.m {
		if k >= lo && k <= hi {
			keys = append(keys, k)
		}
	}
	ix.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	n := 0
	for _, k := range keys {
		v, ok := ix.Get(k)
		if !ok {
			continue
		}
		n++
		if !fn(k, v) {
			break
		}
	}
	return n
}

func (ix *memIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.m)
}

func (ix *memIndex) Stats() core.Stats {
	return core.Stats{Name: "mem", Count: ix.Len()}
}

func (ix *memIndex) Insert(k core.Key, v core.Value) {
	ix.mu.Lock()
	ix.m[k] = v
	ix.mu.Unlock()
}

func (ix *memIndex) Delete(k core.Key) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	_, ok := ix.m[k]
	delete(ix.m, k)
	return ok
}

// memBuild returns a BuildFunc producing a memIndex with the given
// segment count (keys route by modulo; stable, which is all Durable
// needs).
func memBuild(segments int) BuildFunc {
	return func(meta map[string]string, recs []core.KV) (BuildResult, error) {
		res := BuildResult{Index: newMemIndex(recs), Segments: segments}
		if segments > 1 {
			res.ConcurrentReads = true
			res.Route = func(k core.Key) int { return int(k % core.Key(segments)) }
		}
		return res, nil
	}
}

func collect(d *Durable) []core.KV {
	var out []core.KV
	d.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
		out = append(out, core.KV{Key: k, Value: v})
		return true
	})
	return out
}

func TestDurableBasic(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 100; i++ {
		if err := d.Put(core.Key(i), core.Value(i*2)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if ok, err := d.Del(50); err != nil || !ok {
		t.Fatalf("del: ok=%v err=%v", ok, err)
	}
	if ok, err := d.Del(1000); err != nil || ok {
		t.Fatalf("del missing: ok=%v err=%v", ok, err)
	}
	if d.Len() != 99 {
		t.Fatalf("len %d, want 99", d.Len())
	}
	if v, ok := d.Get(7); !ok || v != 14 {
		t.Fatalf("get(7) = %d,%v", v, ok)
	}
	if _, ok := d.Get(50); ok {
		t.Fatal("deleted key still visible")
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen: the WAL replays into an identical index.
	d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Len() != 99 {
		t.Fatalf("recovered len %d, want 99", d2.Len())
	}
	info := d2.RecoveryInfo()
	if info.WALRecs != 102 {
		t.Fatalf("recovery replayed %d records, want 102", info.WALRecs)
	}
	if v, ok := d2.Get(7); !ok || v != 14 {
		t.Fatalf("recovered get(7) = %d,%v", v, ok)
	}
}

func TestDurableCheckpointRotatesAndGCs(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		d.Put(core.Key(i), core.Value(i))
	}
	gen := d.Gen()
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if d.Gen() != gen+1 {
		t.Fatalf("gen %d after checkpoint, want %d", d.Gen(), gen+1)
	}
	// Post-checkpoint mutations land in the new generation's WAL.
	for i := 200; i < 250; i++ {
		d.Put(core.Key(i), core.Value(i))
	}
	d.Close()

	// Old generation files are gone; exactly one snapshot plus the
	// current WAL remain.
	st, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.snaps) != 1 || len(st.wals) != 1 {
		t.Fatalf("post-GC dir: %d snaps %d wal gens", len(st.snaps), len(st.wals))
	}

	d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Len() != 250 {
		t.Fatalf("recovered len %d, want 250", d2.Len())
	}
	info := d2.RecoveryInfo()
	if info.SnapshotRecs != 200 || info.WALRecs != 50 {
		t.Fatalf("recovery split snap=%d wal=%d, want 200/50", info.SnapshotRecs, info.WALRecs)
	}
}

func TestDurableCreateSeedsAndRefuses(t *testing.T) {
	dir := t.TempDir()
	seed := testKVs(500)
	d, err := Create(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1), seed)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if d.Len() != 500 {
		t.Fatalf("seeded len %d", d.Len())
	}
	d.Close()
	if _, err := Create(dir, Config{}, memBuild(1), nil); err == nil {
		t.Fatal("second Create on a populated dir must fail")
	}
	// The seed is durable without any WAL record.
	d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Len() != 500 {
		t.Fatalf("recovered seed len %d", d2.Len())
	}
}

func TestDurableMetaPersists(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Fsync: SyncNever, CheckpointEvery: -1, Meta: map[string]string{"kind": "mem", "x": "1"}}
	d, err := Create(dir, cfg, memBuild(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Put(1, 1)
	d.Close()

	var gotMeta map[string]string
	build := func(meta map[string]string, recs []core.KV) (BuildResult, error) {
		gotMeta = meta
		return memBuild(1)(meta, recs)
	}
	d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, build)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if gotMeta["kind"] != "mem" || gotMeta["x"] != "1" {
		t.Fatalf("builder saw meta %v", gotMeta)
	}
	if d2.Meta()["kind"] != "mem" {
		t.Fatalf("Meta() = %v", d2.Meta())
	}
}

func TestDurableSegmentedConcurrent(t *testing.T) {
	dir := t.TempDir()
	const segs = 4
	d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(segs))
	if err != nil {
		t.Fatal(err)
	}
	if d.Segments() != segs {
		t.Fatalf("segments %d", d.Segments())
	}
	const writers, each = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				k := core.Key(g*each + i)
				if err := d.Put(k, core.Value(k*3)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if i%10 == 9 {
					d.Del(k) // exercise cross-op ordering per key
				}
			}
		}(g)
	}
	wg.Wait()
	want := collect(d)
	d.Close()

	// Parallel multi-segment recovery merges by seq into the same state.
	d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(segs))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	got := collect(d2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestDurableSegmentCountChangeAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		d.Put(core.Key(i), core.Value(i))
	}
	d.Close()
	// Reopening with a different segmentation must still recover all
	// records: recovery merges every segment by seq regardless of layout.
	d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(2))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 300 {
		t.Fatalf("recovered %d records across segment-count change", d2.Len())
	}
}

func TestDurableAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: 100}, memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		d.Put(core.Key(i), core.Value(i))
	}
	// The background checkpointer must rotate at least once; it runs
	// asynchronously, so poll with a generous deadline.
	deadline := time.Now().Add(5 * time.Second)
	for d.Gen() == 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d.Gen() == 1 {
		t.Fatal("background checkpoint never fired")
	}
	d.Close()
}

func TestDurableObservability(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewMetrics("dur")
	d, err := Open(dir, Config{Fsync: SyncAlways, CheckpointEvery: -1, Metrics: m}, memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d.Put(core.Key(i), core.Value(i))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if m.Events.Count(obs.EvWALFlush) == 0 {
		t.Fatal("no wal_flush events under SyncAlways")
	}
	if m.Events.Count(obs.EvCheckpoint) != 1 {
		t.Fatalf("checkpoint events %d", m.Events.Count(obs.EvCheckpoint))
	}
	if m.FsyncNS.Snapshot().Count == 0 {
		t.Fatal("fsync histogram empty")
	}

	m2 := obs.NewMetrics("dur2")
	d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1, Metrics: m2}, memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	d2.Close()
	if m2.Events.Count(obs.EvRecovery) != 1 {
		t.Fatalf("recovery events %d", m2.Events.Count(obs.EvRecovery))
	}
}

func TestDurableStatsWrapped(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Put(1, 1)
	st := d.Stats()
	if !strings.HasPrefix(st.Name, "durable(") {
		t.Fatalf("stats name %q", st.Name)
	}
	if st.IndexBytes == 0 {
		t.Fatal("stats does not count WAL bytes")
	}
}

func TestDurableCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		d.Put(core.Key(i), core.Value(i))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 120; i++ {
		d.Put(core.Key(i), core.Value(i))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Corrupt the newest snapshot. After the second checkpoint the first
	// generation was GC'd, so recovery falls back to an empty base — but
	// it must not abort, and the corrupt-snapshot count must say why.
	st, _ := scanDir(dir)
	if len(st.snaps) != 1 {
		t.Fatalf("snaps after GC: %d", len(st.snaps))
	}
	for _, path := range st.snaps {
		data, _ := os.ReadFile(path)
		data[len(data)/2] ^= 0xff
		os.WriteFile(path, data, 0o644)
	}
	d2, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatalf("open with corrupt snapshot: %v", err)
	}
	defer d2.Close()
	if d2.RecoveryInfo().CorruptSnapshots != 1 {
		t.Fatalf("corrupt snapshots %d", d2.RecoveryInfo().CorruptSnapshots)
	}
}

func TestScanDirIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "snap-zzzz.lix"), []byte("x"), 0o644)
	d, err := Open(dir, Config{Fsync: SyncNever, CheckpointEvery: -1}, memBuild(1))
	if err != nil {
		t.Fatalf("open with foreign files: %v", err)
	}
	d.Close()
}
