package zm

import (
	"sort"
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func bruteCount(pvs []core.PV, rect core.Rect) int {
	n := 0
	for _, pv := range pvs {
		if rect.Contains(pv.Point) {
			n++
		}
	}
	return n
}

func TestBuildAndLookup(t *testing.T) {
	for _, kind := range dataset.SpatialKinds() {
		for _, curve := range []CurveKind{CurveZ, CurveHilbert} {
			pts, _ := dataset.Points(kind, 4000, 2, 1001)
			pvs := dataset.PV(pts)
			ix, err := Build(pvs, Config{Curve: curve})
			if err != nil {
				t.Fatal(err)
			}
			if ix.Len() != 4000 {
				t.Fatalf("%s/%s: len = %d", kind, curve, ix.Len())
			}
			for i, pv := range pvs {
				v, ok := ix.Lookup(pv.Point)
				if !ok {
					t.Fatalf("%s/%s: Lookup miss at %d", kind, curve, i)
				}
				// Duplicate coordinates may legitimately return another
				// point's value; verify the value belongs to an equal point.
				if !pvs[v].Point.Equal(pv.Point) {
					t.Fatalf("%s/%s: Lookup wrong value", kind, curve)
				}
			}
			if _, ok := ix.Lookup(core.Point{-1, -1}); ok {
				t.Fatalf("%s/%s: phantom lookup", kind, curve)
			}
		}
	}
}

func TestSearchMatchesBrute(t *testing.T) {
	for _, dimCase := range []struct {
		dim   int
		curve CurveKind
	}{{2, CurveZ}, {2, CurveHilbert}, {3, CurveZ}} {
		pts, _ := dataset.Points(dataset.SOSMLike, 5000, dimCase.dim, 1002)
		pvs := dataset.PV(pts)
		ix, err := Build(pvs, Config{Curve: dimCase.curve})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range dataset.RectQueries(pts, 30, 0.01, 1003) {
			want := bruteCount(pvs, q)
			got, ivs := ix.Search(q, func(core.PV) bool { return true })
			if got != want {
				t.Fatalf("dim=%d curve=%s q%d: got %d, want %d", dimCase.dim, dimCase.curve, qi, got, want)
			}
			if ivs <= 0 {
				t.Fatal("no intervals")
			}
		}
	}
}

func TestKNNMatchesBrute(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 3000, 2, 1004)
	pvs := dataset.PV(pts)
	ix, _ := Build(pvs, Config{})
	for _, k := range []int{1, 10, 100} {
		for qi, q := range dataset.KNNQueries(pts, 15, 1005) {
			ds := make([]float64, len(pvs))
			for i, pv := range pvs {
				ds[i] = q.DistSq(pv.Point)
			}
			sort.Float64s(ds)
			got := ix.KNN(q, k)
			if len(got) != k {
				t.Fatalf("q%d k=%d: len %d", qi, k, len(got))
			}
			for i, pv := range got {
				if d := q.DistSq(pv.Point); d != ds[i] {
					t.Fatalf("q%d k=%d i=%d: %g want %g", qi, k, i, d, ds[i])
				}
			}
		}
	}
	if got := ix.KNN(core.Point{0, 0}, 5000); len(got) != 3000 {
		t.Fatalf("kNN beyond size = %d", len(got))
	}
}

func TestErrors(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Fatal("empty accepted")
	}
	pts3, _ := dataset.Points(dataset.SUniform, 10, 3, 1)
	if _, err := Build(dataset.PV(pts3), Config{Curve: CurveHilbert}); err == nil {
		t.Fatal("3-D hilbert accepted")
	}
	if _, err := Build([]core.PV{{Point: core.Point{1}}, {Point: core.Point{1, 2}}}, Config{}); err == nil {
		t.Fatal("mixed dims accepted")
	}
	if _, err := Build(dataset.PV(pts3), Config{Curve: "bogus"}); err == nil {
		t.Fatal("bogus curve accepted")
	}
}

func TestDegenerateSinglePoint(t *testing.T) {
	ix, err := Build([]core.PV{{Point: core.Point{5, 5}, Value: 9}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := ix.Lookup(core.Point{5, 5}); !ok || v != 9 {
		t.Fatal("single point lookup")
	}
	rect, _ := core.NewRect(core.Point{0, 0}, core.Point{10, 10})
	n, _ := ix.Search(rect, func(core.PV) bool { return true })
	if n != 1 {
		t.Fatalf("single point search = %d", n)
	}
}

func TestStatsAndBudget(t *testing.T) {
	pts, _ := dataset.Points(dataset.SOSMLike, 5000, 2, 1006)
	ix, _ := Build(dataset.PV(pts), Config{MaxRanges: 4})
	st := ix.Stats()
	if st.Count != 5000 || st.IndexBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Tiny interval budget must still be correct (more scanning).
	pvs := dataset.PV(pts)
	for _, q := range dataset.RectQueries(pts, 10, 0.01, 1007) {
		want := bruteCount(pvs, q)
		got, ivs := ix.Search(q, func(core.PV) bool { return true })
		if got != want {
			t.Fatalf("budget search: got %d want %d", got, want)
		}
		if ivs > 4 {
			t.Fatalf("interval budget exceeded: %d", ivs)
		}
	}
}

func TestEarlyStop(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 1000, 2, 1008)
	ix, _ := Build(dataset.PV(pts), Config{})
	all, _ := core.NewRect(core.Point{0, 0}, core.Point{dataset.Extent, dataset.Extent})
	count := 0
	ix.Search(all, func(core.PV) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop = %d", count)
	}
}

// TestKNNDegenerateExtent is a regression test for a bug found by the
// conform differential suite (shrunk repro: one point at [100,100], query
// KNN([500,500], 1)). KNN capped its window expansion at a multiple of the
// data extent's span, so with a degenerate extent (a single distinct
// location, span 0) — or a query far outside the extent — the window never
// reached the data and KNN returned no results.
func TestKNNDegenerateExtent(t *testing.T) {
	for _, curve := range []CurveKind{CurveZ, CurveHilbert} {
		single := []core.PV{{Point: core.Point{100, 100}, Value: 1}}
		ix, err := Build(single, Config{Curve: curve})
		if err != nil {
			t.Fatalf("%s: %v", curve, err)
		}
		got := ix.KNN(core.Point{500, 500}, 1)
		if len(got) != 1 || got[0].Value != 1 {
			t.Fatalf("%s: KNN over single point = %v, want that point", curve, got)
		}

		equal := make([]core.PV, 200)
		for i := range equal {
			equal[i] = core.PV{Point: core.Point{512, 512}, Value: core.Value(i)}
		}
		ix, err = Build(equal, Config{Curve: curve})
		if err != nil {
			t.Fatalf("%s: %v", curve, err)
		}
		if got := ix.KNN(core.Point{500, 500}, 3); len(got) != 3 {
			t.Fatalf("%s: KNN over equal points returned %d results, want 3", curve, len(got))
		}
	}
}
