// Package zm implements the ZM-index (Wang et al., MDM 2019): points are
// projected to one dimension with a Z-order (or Hilbert) space-filling
// curve and a learned one-dimensional index — here a PGM-index — is built
// over the curve codes. Range queries decompose the query rectangle into
// curve intervals, look up each interval in the learned index, and filter
// the scanned points exactly.
//
// Taxonomy: immutable / pure / projected space (Approach 2 in the paper).
package zm

import (
	"fmt"
	"math"
	"sort"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/pgm"
	"github.com/lix-go/lix/internal/sfc"
)

// CurveKind selects the projection curve.
type CurveKind string

// Supported curves. Hilbert is 2-D only.
const (
	CurveZ       CurveKind = "z"
	CurveHilbert CurveKind = "hilbert"
)

// Config parameterizes a build.
type Config struct {
	// Bits per dimension for quantization (0 selects the max that fits).
	Bits uint
	// Epsilon for the underlying PGM-index (0 selects the PGM default).
	Epsilon int
	// Curve selects the projection (empty selects CurveZ).
	Curve CurveKind
	// MaxRanges bounds the per-query rectangle decomposition (0 -> 128).
	MaxRanges int
}

// Index is an immutable ZM-index.
type Index struct {
	cfg    Config
	dim    int
	quant  *sfc.Quantizer
	morton *sfc.Morton
	hil    *sfc.Hilbert2D
	codes  []core.Key // sorted curve codes, parallel to pts
	pts    []core.PV
	ix     *pgm.Index
}

// Build constructs a ZM-index over the points (copied and reordered).
func Build(pvs []core.PV, cfg Config) (*Index, error) {
	if len(pvs) == 0 {
		return nil, fmt.Errorf("zm: empty input")
	}
	dim := pvs[0].Point.Dim()
	for i := range pvs {
		if pvs[i].Point.Dim() != dim {
			return nil, fmt.Errorf("zm: point %d dim %d, want %d", i, pvs[i].Point.Dim(), dim)
		}
	}
	if cfg.Curve == "" {
		cfg.Curve = CurveZ
	}
	if cfg.Curve == CurveHilbert && dim != 2 {
		return nil, fmt.Errorf("zm: hilbert curve requires dim 2, got %d", dim)
	}
	if cfg.Bits == 0 {
		cfg.Bits = uint(63 / dim)
		if cfg.Bits > 20 {
			cfg.Bits = 20
		}
	}
	if cfg.MaxRanges <= 0 {
		cfg.MaxRanges = 128
	}
	// Bounds: dataset extent with slack for exact data bounds.
	min := make([]float64, dim)
	max := make([]float64, dim)
	for d := 0; d < dim; d++ {
		min[d], max[d] = pvs[0].Point[d], pvs[0].Point[d]
	}
	for _, pv := range pvs {
		for d := 0; d < dim; d++ {
			if pv.Point[d] < min[d] {
				min[d] = pv.Point[d]
			}
			if pv.Point[d] > max[d] {
				max[d] = pv.Point[d]
			}
		}
	}
	for d := 0; d < dim; d++ {
		if !(max[d] > min[d]) {
			max[d] = min[d] + 1
		} else {
			max[d] += (max[d] - min[d]) * 1e-9 // make the top point interior
		}
	}
	q, err := sfc.NewQuantizer(min, max, cfg.Bits)
	if err != nil {
		return nil, err
	}
	z := &Index{cfg: cfg, dim: dim, quant: q}
	switch cfg.Curve {
	case CurveZ:
		z.morton, err = sfc.NewMorton(dim, cfg.Bits)
	case CurveHilbert:
		z.hil, err = sfc.NewHilbert2D(cfg.Bits)
	default:
		return nil, fmt.Errorf("zm: unknown curve %q", cfg.Curve)
	}
	if err != nil {
		return nil, err
	}
	// Encode, sort by code.
	type coded struct {
		code core.Key
		pv   core.PV
	}
	cs := make([]coded, len(pvs))
	for i, pv := range pvs {
		cs[i] = coded{code: z.code(pv.Point), pv: pv}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].code < cs[j].code })
	z.codes = make([]core.Key, len(cs))
	z.pts = make([]core.PV, len(cs))
	recs := make([]core.KV, len(cs))
	for i, c := range cs {
		z.codes[i] = c.code
		z.pts[i] = c.pv
		recs[i] = core.KV{Key: c.code, Value: core.Value(i)}
	}
	z.ix, err = pgm.Build(recs, cfg.Epsilon)
	if err != nil {
		return nil, err
	}
	return z, nil
}

func (z *Index) code(p core.Point) core.Key {
	cells := z.quant.CellPoint(p)
	if z.morton != nil {
		return core.Key(z.morton.Encode(cells))
	}
	return core.Key(z.hil.Encode(cells[0], cells[1]))
}

// Len returns the number of points.
func (z *Index) Len() int { return len(z.pts) }

// Lookup returns the value of the point equal to p.
func (z *Index) Lookup(p core.Point) (core.Value, bool) {
	if p.Dim() != z.dim {
		return 0, false
	}
	c := z.code(p)
	i := z.ix.LowerBound(c)
	for ; i < len(z.codes) && z.codes[i] == c; i++ {
		if z.pts[i].Point.Equal(p) {
			return z.pts[i].Value, true
		}
	}
	return 0, false
}

// Search calls fn for every point in rect; fn returning false stops. It
// returns points visited and curve intervals scanned (the I/O proxy).
func (z *Index) Search(rect core.Rect, fn func(core.PV) bool) (visited, intervals int) {
	if rect.Dim() != z.dim {
		return 0, 0
	}
	min := make([]uint32, z.dim)
	max := make([]uint32, z.dim)
	for d := 0; d < z.dim; d++ {
		min[d] = z.quant.Cell(d, rect.Min[d])
		max[d] = z.quant.Cell(d, rect.Max[d])
	}
	var ivs []sfc.Interval
	if z.morton != nil {
		ivs = z.morton.Ranges(min, max, z.cfg.MaxRanges)
	} else {
		ivs = z.hil.Ranges([2]uint32{min[0], min[1]}, [2]uint32{max[0], max[1]}, z.cfg.MaxRanges)
	}
	for _, iv := range ivs {
		i := z.ix.LowerBound(core.Key(iv.Lo))
		for ; i < len(z.codes) && z.codes[i] <= core.Key(iv.Hi); i++ {
			if rect.Contains(z.pts[i].Point) {
				visited++
				if !fn(z.pts[i]) {
					return visited, len(ivs)
				}
			}
		}
	}
	return visited, len(ivs)
}

// KNN returns the k nearest points to q in ascending distance order, by
// doubling an axis-aligned search window until the k-th candidate lies
// within the window's inscribed ball.
func (z *Index) KNN(q core.Point, k int) []core.PV {
	if k <= 0 || q.Dim() != z.dim || len(z.pts) == 0 {
		return nil
	}
	if k > len(z.pts) {
		k = len(z.pts)
	}
	// Initial half-width guess from global density; cover is the half-width
	// at which the window is guaranteed to contain the entire data extent
	// (and with it every stored point), measured from q. Capping expansion
	// by the span alone would terminate too early when the extent is
	// degenerate (all points equal) or q lies far outside it.
	span, cover := 0.0, 0.0
	for d := 0; d < z.dim; d++ {
		s := z.quant.Max[d] - z.quant.Min[d]
		if s > span {
			span = s
		}
		if a := math.Abs(q[d] - z.quant.Min[d]); a > cover {
			cover = a
		}
		if a := math.Abs(q[d] - z.quant.Max[d]); a > cover {
			cover = a
		}
	}
	w := span * 0.01
	if w <= 0 {
		w = 1
	}
	for {
		rect := core.Rect{Min: make(core.Point, z.dim), Max: make(core.Point, z.dim)}
		for d := 0; d < z.dim; d++ {
			rect.Min[d] = q[d] - w
			rect.Max[d] = q[d] + w
		}
		var cand []core.PV
		z.Search(rect, func(pv core.PV) bool {
			cand = append(cand, pv)
			return true
		})
		if len(cand) >= k {
			sort.Slice(cand, func(i, j int) bool {
				return q.DistSq(cand[i].Point) < q.DistSq(cand[j].Point)
			})
			if q.DistSq(cand[k-1].Point) <= w*w {
				return cand[:k]
			}
		}
		if len(cand) == len(z.pts) || w >= cover {
			// The window holds every stored point: finish with what we have.
			sort.Slice(cand, func(i, j int) bool {
				return q.DistSq(cand[i].Point) < q.DistSq(cand[j].Point)
			})
			if len(cand) > k {
				cand = cand[:k]
			}
			return cand
		}
		w *= 2
	}
}

// Stats reports structure statistics.
func (z *Index) Stats() core.Stats {
	st := z.ix.Stats()
	return core.Stats{
		Name:       "zm-" + string(z.cfg.Curve),
		Count:      len(z.pts),
		IndexBytes: st.IndexBytes + 8*len(z.codes),
		DataBytes:  len(z.pts) * (8*z.dim + 8),
		Height:     st.Height,
		Models:     st.Models,
	}
}
