package zm

import "fmt"

// CheckInvariants verifies the ZM-index: the stored curve codes are sorted,
// every code matches the re-encoding of its point, the parallel arrays
// agree in length, and the underlying PGM-index both satisfies its own
// invariants and maps every code to the correct array position. It is
// O(n log n) and intended for tests.
func (z *Index) CheckInvariants() error {
	if len(z.codes) != len(z.pts) {
		return fmt.Errorf("zm: %d codes for %d points", len(z.codes), len(z.pts))
	}
	for i := range z.codes {
		if i > 0 && z.codes[i] < z.codes[i-1] {
			return fmt.Errorf("zm: codes out of order at %d", i)
		}
		if got := z.code(z.pts[i].Point); got != z.codes[i] {
			return fmt.Errorf("zm: stored code %d at %d, re-encoding gives %d", z.codes[i], i, got)
		}
	}
	if err := z.ix.CheckInvariants(); err != nil {
		return fmt.Errorf("zm: underlying pgm: %w", err)
	}
	// The learned index must land LowerBound(code) at the first occurrence
	// of that code in the sorted array.
	for i := range z.codes {
		if i > 0 && z.codes[i] == z.codes[i-1] {
			continue
		}
		if got := z.ix.LowerBound(z.codes[i]); got != i {
			return fmt.Errorf("zm: LowerBound(%d) = %d, want %d", z.codes[i], got, i)
		}
	}
	return nil
}
