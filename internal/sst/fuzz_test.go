package sst

import (
	"bytes"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

// FuzzSSTDecode mirrors FuzzPageDecode for the run-file format: DecodeFile
// must never panic, must not allocate beyond what the input size justifies,
// and every accepted input must re-encode byte-exactly (the canonical
// encoding property the crash sweep and the reader rely on).
func FuzzSSTDecode(f *testing.F) {
	// Valid seeds at interesting shapes.
	seed := func(live []core.KV, dead []core.Key, seq uint64) {
		b, err := EncodeFile(&FileData{Live: live, Dead: dead, Seq: seq})
		if err == nil {
			f.Add(b)
		}
	}
	seed([]core.KV{{Key: 1, Value: 2}}, nil, 7)
	seed(nil, []core.Key{9}, 1)
	seed([]core.KV{{Key: 1, Value: 2}, {Key: 5, Value: 0}}, []core.Key{3, 8}, 42)
	var big []core.KV
	for i := 0; i < RecsPerPage+3; i++ {
		big = append(big, core.KV{Key: core.Key(2 * i), Value: core.Value(i)})
	}
	seed(big, []core.Key{uint64(2*RecsPerPage + 7)}, 3)
	// Invalid seeds.
	f.Add([]byte{})
	f.Add(make([]byte, PageSize))
	f.Add(make([]byte, 2*PageSize))
	f.Add(make([]byte, 2*PageSize+1))

	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeFile(b)
		if err != nil {
			return
		}
		// Accepted: content must be within the capacity the file implies.
		if max := len(b) / PageSize * RecsPerPage; len(d.Live)+len(d.Dead) > max {
			t.Fatalf("decoded %d records from a %d-page file", len(d.Live)+len(d.Dead), len(b)/PageSize)
		}
		b2, err := EncodeFile(d)
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		if !bytes.Equal(b2, b) {
			t.Fatalf("re-encode not byte-exact: %d vs %d bytes", len(b2), len(b))
		}
	})
}
