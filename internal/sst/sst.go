// Package sst implements immutable sorted-run files (SSTables) for the
// learned LSM storage engine: the disk format, a canonical encoder/decoder
// (the fuzz surface), an atomic writer, and a reader that serves point
// lookups through a learned fence index and a hybrid learned Bloom filter.
//
// This is the LSM branch of the learned-index taxonomy (paper §5, Bourbon;
// "Updatable Learned Indexes Meet Disk-Resident DBMS" in PAPERS.md): the
// durable store flushes its memtable into sorted runs, each run carries a
// per-run learned fence index (PLA over the first key of every data page,
// built with the same `internal/segment` machinery as the PGM kinds) and a
// per-run learned Bloom filter (`internal/lbf`, classifier + backup, zero
// false negatives) so point lookups of absent keys skip the run without
// touching disk.
//
// On-disk format. A run file is a sequence of 4 KiB pages reusing the
// CRC32C page framing from `internal/page` — every page carries the
// standard 24-byte header (CRC, type, count, self-id, link) and zero
// padding, so torn or bit-flipped writes anywhere are detected on read.
//
// Page 0 is the run's meta page (TypeMeta). After the standard header:
//
//	[24:32] magic "LIXSST01"
//	[32:36] format version, little-endian u32 (currently 1)
//	[36:40] page size, little-endian u32 (always 4096)
//	[40:48] live record count, little-endian u64
//	[48:56] tombstone count, little-endian u64
//	[56:64] sequence watermark, little-endian u64 — the highest WAL
//	        sequence number folded into this run
//	[64:72] min key (over live ∪ tombstone keys)
//	[72:80] max key (over live ∪ tombstone keys)
//	[80:..] zero padding
//
// Pages 1..D are data pages (TypeLeaf): sorted (key, value) records, every
// page full except the last, linked in a chain. Pages D+1..D+T are
// tombstone pages (TypeLeaf with value 0 for every record): the sorted
// keys this run deletes from older runs, in their own chain. A key appears
// at most once per run — live or dead, never both.
//
// The fence index and the learned filter are derived data: they are
// rebuilt from the page contents at open (exactly as the paged PGM kind
// rebuilds its fence model), never persisted, so the file format stays
// canonical and the fuzz target can pin Encode(Decode(b)) == b.
package sst

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/page"
)

const (
	// Magic identifies a run file's meta page.
	Magic = "LIXSST01"
	// Version is the current format version.
	Version = 1
	// PageSize is the fixed run-file page size.
	PageSize = page.Size4K
)

// RecsPerPage is how many records fit in one data or tombstone page.
var RecsPerPage = page.LeafCap(PageSize)

// FileData is the logical content of one run file: the validated,
// canonical decode of its pages.
type FileData struct {
	// Live holds the run's records, keys strictly ascending.
	Live []core.KV
	// Dead holds the keys this run deletes, strictly ascending and
	// disjoint from Live.
	Dead []core.Key
	// Seq is the highest WAL sequence number folded into the run.
	Seq uint64
}

// MinKey returns the smallest key in the run (live or dead). The run must
// be non-empty.
func (d *FileData) MinKey() core.Key {
	switch {
	case len(d.Live) == 0:
		return d.Dead[0]
	case len(d.Dead) == 0:
		return d.Live[0].Key
	case d.Dead[0] < d.Live[0].Key:
		return d.Dead[0]
	default:
		return d.Live[0].Key
	}
}

// MaxKey returns the largest key in the run (live or dead). The run must
// be non-empty.
func (d *FileData) MaxKey() core.Key {
	switch {
	case len(d.Live) == 0:
		return d.Dead[len(d.Dead)-1]
	case len(d.Dead) == 0:
		return d.Live[len(d.Live)-1].Key
	case d.Dead[len(d.Dead)-1] > d.Live[len(d.Live)-1].Key:
		return d.Dead[len(d.Dead)-1]
	default:
		return d.Live[len(d.Live)-1].Key
	}
}

// validate checks the writer-side invariants: a non-empty run, strictly
// ascending keys in both lists, and live/dead disjointness.
func validate(d *FileData) error {
	if len(d.Live)+len(d.Dead) == 0 {
		return fmt.Errorf("sst: empty run")
	}
	for i := 1; i < len(d.Live); i++ {
		if d.Live[i-1].Key >= d.Live[i].Key {
			return fmt.Errorf("sst: live keys not strictly ascending at %d", i)
		}
	}
	for i := 1; i < len(d.Dead); i++ {
		if d.Dead[i-1] >= d.Dead[i] {
			return fmt.Errorf("sst: tombstone keys not strictly ascending at %d", i)
		}
	}
	// Two-pointer disjointness walk over the sorted lists.
	i, j := 0, 0
	for i < len(d.Live) && j < len(d.Dead) {
		switch {
		case d.Live[i].Key < d.Dead[j]:
			i++
		case d.Live[i].Key > d.Dead[j]:
			j++
		default:
			return fmt.Errorf("sst: key %d is both live and dead", d.Live[i].Key)
		}
	}
	return nil
}

// pagesFor returns how many pages n records occupy.
func pagesFor(n int) int {
	return (n + RecsPerPage - 1) / RecsPerPage
}

// EncodeFile renders d into a sealed run-file byte image. The encoding is
// canonical: every accepted input produces exactly one byte image, and
// DecodeFile(EncodeFile(d)) reproduces d.
func EncodeFile(d *FileData) ([]byte, error) {
	if err := validate(d); err != nil {
		return nil, err
	}
	dp := pagesFor(len(d.Live))
	tp := pagesFor(len(d.Dead))
	np := 1 + dp + tp
	buf := make([]byte, np*PageSize)

	meta := page.Buf(buf[:PageSize])
	meta.Reset(page.TypeMeta, 0)
	copy(meta[24:32], Magic)
	binary.LittleEndian.PutUint32(meta[32:36], Version)
	binary.LittleEndian.PutUint32(meta[36:40], PageSize)
	binary.LittleEndian.PutUint64(meta[40:48], uint64(len(d.Live)))
	binary.LittleEndian.PutUint64(meta[48:56], uint64(len(d.Dead)))
	binary.LittleEndian.PutUint64(meta[56:64], d.Seq)
	binary.LittleEndian.PutUint64(meta[64:72], d.MinKey())
	binary.LittleEndian.PutUint64(meta[72:80], d.MaxKey())
	meta.Seal()

	// Data chain: pages 1..dp, every page full except the last.
	for i := 0; i < dp; i++ {
		id := uint64(1 + i)
		p := page.Buf(buf[int(id)*PageSize : (int(id)+1)*PageSize])
		p.Reset(page.TypeLeaf, id)
		if i < dp-1 {
			p.SetLink(id + 1)
		}
		lo := i * RecsPerPage
		hi := lo + RecsPerPage
		if hi > len(d.Live) {
			hi = len(d.Live)
		}
		p.SetCount(hi - lo)
		for j := lo; j < hi; j++ {
			p.SetLeafRecord(j-lo, d.Live[j].Key, d.Live[j].Value)
		}
		p.Seal()
	}
	// Tombstone chain: pages dp+1..dp+tp, value 0 for every record.
	for i := 0; i < tp; i++ {
		id := uint64(1 + dp + i)
		p := page.Buf(buf[int(id)*PageSize : (int(id)+1)*PageSize])
		p.Reset(page.TypeLeaf, id)
		if i < tp-1 {
			p.SetLink(id + 1)
		}
		lo := i * RecsPerPage
		hi := lo + RecsPerPage
		if hi > len(d.Dead) {
			hi = len(d.Dead)
		}
		p.SetCount(hi - lo)
		for j := lo; j < hi; j++ {
			p.SetLeafRecord(j-lo, d.Dead[j], 0)
		}
		p.Seal()
	}
	return buf, nil
}

// DecodeFile validates b as a canonical run file and returns its logical
// content. Every structural property is checked — page CRCs, types, self
// ids, chain links, counts, strict global key order, live/dead
// disjointness, zero padding, and meta-page consistency — so a torn,
// truncated, or bit-flipped run is rejected rather than served, and
// EncodeFile(DecodeFile(b)) reproduces b byte-exactly for every accepted
// b (what FuzzSSTDecode pins). Allocations are bounded by len(b): counts
// are validated against the page count before any slice is sized from
// them.
func DecodeFile(b []byte) (*FileData, error) {
	if len(b)%PageSize != 0 {
		return nil, fmt.Errorf("sst: size %d not a multiple of the page size", len(b))
	}
	np := len(b) / PageSize
	if np < 2 {
		return nil, fmt.Errorf("sst: %d pages, need a meta page and at least one content page", np)
	}
	meta := page.Buf(b[:PageSize])
	if !meta.VerifyCRC() {
		return nil, fmt.Errorf("sst: meta page CRC mismatch")
	}
	if meta[5] != 0 {
		return nil, fmt.Errorf("sst: meta page nonzero flags byte %#x", meta[5])
	}
	if meta.Type() != page.TypeMeta || meta.ID() != 0 {
		return nil, fmt.Errorf("sst: page 0 is not a meta page")
	}
	if meta.Count() != 0 || meta.Link() != 0 {
		return nil, fmt.Errorf("sst: meta page count/link not zero")
	}
	if string(meta[24:32]) != Magic {
		return nil, fmt.Errorf("sst: bad magic %q", meta[24:32])
	}
	if v := binary.LittleEndian.Uint32(meta[32:36]); v != Version {
		return nil, fmt.Errorf("sst: unsupported format version %d", v)
	}
	if ps := binary.LittleEndian.Uint32(meta[36:40]); ps != PageSize {
		return nil, fmt.Errorf("sst: unsupported page size %d", ps)
	}
	nLive := binary.LittleEndian.Uint64(meta[40:48])
	nDead := binary.LittleEndian.Uint64(meta[48:56])
	// Page-count consistency before anything is allocated from the counts.
	maxRecs := uint64(np) * uint64(RecsPerPage)
	if nLive > maxRecs || nDead > maxRecs {
		return nil, fmt.Errorf("sst: counts %d/%d exceed file capacity", nLive, nDead)
	}
	if nLive+nDead == 0 {
		return nil, fmt.Errorf("sst: empty run")
	}
	dp := pagesFor(int(nLive))
	tp := pagesFor(int(nDead))
	if 1+dp+tp != np {
		return nil, fmt.Errorf("sst: %d pages, meta declares %d (%d data + %d tombstone)", np, 1+dp+tp, dp, tp)
	}
	for i := 80; i < PageSize; i++ {
		if meta[i] != 0 {
			return nil, fmt.Errorf("sst: meta page nonzero padding at byte %d", i)
		}
	}

	d := &FileData{Seq: binary.LittleEndian.Uint64(meta[56:64])}
	if nLive > 0 {
		d.Live = make([]core.KV, 0, nLive)
	}
	if nDead > 0 {
		d.Dead = make([]core.Key, 0, nDead)
	}
	// decodeChain validates one page chain (data or tombstone) and invokes
	// emit for each record in order.
	decodeChain := func(first, pages, recs int, what string, emit func(k core.Key, v core.Value) error) error {
		var prev core.Key
		havePrev := false
		for i := 0; i < pages; i++ {
			id := uint64(first + i)
			p := page.Buf(b[int(id)*PageSize : (int(id)+1)*PageSize])
			if !p.VerifyCRC() {
				return fmt.Errorf("sst: %s page %d CRC mismatch", what, id)
			}
			if p[5] != 0 {
				return fmt.Errorf("sst: %s page %d nonzero flags", what, id)
			}
			if p.Type() != page.TypeLeaf {
				return fmt.Errorf("sst: %s page %d has type %d, want leaf", what, id, p.Type())
			}
			if p.ID() != id {
				return fmt.Errorf("sst: %s page %d stores id %d", what, id, p.ID())
			}
			wantLink := uint64(0)
			if i < pages-1 {
				wantLink = id + 1
			}
			if p.Link() != wantLink {
				return fmt.Errorf("sst: %s page %d links %d, want %d", what, id, p.Link(), wantLink)
			}
			wantCount := RecsPerPage
			if i == pages-1 {
				wantCount = recs - i*RecsPerPage
			}
			if p.Count() != wantCount {
				return fmt.Errorf("sst: %s page %d holds %d records, want %d", what, id, p.Count(), wantCount)
			}
			for j := 0; j < wantCount; j++ {
				k := p.LeafKey(j)
				if havePrev && k <= prev {
					return fmt.Errorf("sst: %s keys not strictly ascending at page %d slot %d", what, id, j)
				}
				prev, havePrev = k, true
				if err := emit(k, p.LeafVal(j)); err != nil {
					return err
				}
			}
			for off := page.HeaderSize + 16*wantCount; off < PageSize; off++ {
				if p[off] != 0 {
					return fmt.Errorf("sst: %s page %d nonzero padding at byte %d", what, id, off)
				}
			}
		}
		return nil
	}
	if err := decodeChain(1, dp, int(nLive), "data", func(k core.Key, v core.Value) error {
		d.Live = append(d.Live, core.KV{Key: k, Value: v})
		return nil
	}); err != nil {
		return nil, err
	}
	if err := decodeChain(1+dp, tp, int(nDead), "tombstone", func(k core.Key, v core.Value) error {
		if v != 0 {
			return fmt.Errorf("sst: tombstone for key %d carries nonzero value %d", k, v)
		}
		d.Dead = append(d.Dead, k)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := validate(d); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint64(meta[64:72]); got != d.MinKey() {
		return nil, fmt.Errorf("sst: meta min key %d, content says %d", got, d.MinKey())
	}
	if got := binary.LittleEndian.Uint64(meta[72:80]); got != d.MaxKey() {
		return nil, fmt.Errorf("sst: meta max key %d, content says %d", got, d.MaxKey())
	}
	return d, nil
}

// WriteFile atomically writes d as a run file at path: encode, write to a
// temp file in the same directory, fsync, rename over path, fsync the
// directory. A crash at any point leaves either no file at path or a
// complete, valid run — never a torn one.
func WriteFile(path string, d *FileData) error {
	buf, err := EncodeFile(d)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpPath)
	}
	if _, err := tmp.Write(buf); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	return df.Sync()
}
