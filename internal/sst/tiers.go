package sst

import (
	"sort"

	"github.com/lix-go/lix/internal/core"
)

// Tiers is a read view over a set of open runs ordered newest first — the
// LSM resolution rule in one place: the newest run that speaks for a key
// (live record or tombstone) wins, older runs are shadowed.
type Tiers struct {
	runs []*Reader // newest first
}

// NewTiers builds a view over runs, which must be ordered newest first.
func NewTiers(runs []*Reader) *Tiers { return &Tiers{runs: runs} }

// Get resolves k across the tiers, newest run first.
func (t *Tiers) Get(k core.Key) (core.Value, bool, error) {
	for _, r := range t.runs {
		v, st, err := r.Get(k)
		if err != nil {
			return 0, false, err
		}
		switch st {
		case Found:
			return v, true, nil
		case Deleted:
			return 0, false, nil
		}
	}
	return 0, false, nil
}

// Runs returns the underlying readers, newest first.
func (t *Tiers) Runs() []*Reader { return t.runs }

// Counters sums the lookup counters across all runs.
func (t *Tiers) Counters() Counters {
	var c Counters
	for _, r := range t.runs {
		c.add(r.Counters())
	}
	return c
}

// Merge merges runs (ordered newest first) into one logical run: for each
// key the newest entry wins. When dropDead is true tombstones are dropped
// from the output — legal only when the merge includes the store's oldest
// run, otherwise a dropped tombstone would resurrect a shadowed record
// below. The merged Seq is the maximum across inputs.
func Merge(runs []*Reader, dropDead bool) (*FileData, error) {
	type entry struct {
		val  core.Value
		dead bool
	}
	m := make(map[core.Key]entry)
	var seq uint64
	// Apply oldest → newest so newer entries overwrite older ones.
	for i := len(runs) - 1; i >= 0; i-- {
		d, err := runs[i].Data()
		if err != nil {
			return nil, err
		}
		if d.Seq > seq {
			seq = d.Seq
		}
		for _, kv := range d.Live {
			m[kv.Key] = entry{val: kv.Value}
		}
		for _, k := range d.Dead {
			m[k] = entry{dead: true}
		}
	}
	out := &FileData{Seq: seq}
	for k, e := range m {
		if e.dead {
			if !dropDead {
				out.Dead = append(out.Dead, k)
			}
			continue
		}
		out.Live = append(out.Live, core.KV{Key: k, Value: e.val})
	}
	sort.Slice(out.Live, func(i, j int) bool { return out.Live[i].Key < out.Live[j].Key })
	sort.Slice(out.Dead, func(i, j int) bool { return out.Dead[i] < out.Dead[j] })
	return out, nil
}
