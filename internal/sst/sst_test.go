package sst

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/lix-go/lix/internal/core"
)

// genRun builds n live records (even keys, deterministic values) and nd
// tombstones (distinct even keys not among the live ones).
func genRun(t *testing.T, n, nd int, seed int64) *FileData {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	seen := make(map[core.Key]bool, n+nd)
	keys := make([]core.Key, 0, n+nd)
	for len(keys) < n+nd {
		k := core.Key(r.Uint64()) &^ 1 // even keys: odd keys are guaranteed absent
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sortKeys(keys)
	d := &FileData{Seq: uint64(seed)}
	for i, k := range keys {
		if i%(n+nd)%7 == 3 && len(d.Dead) < nd {
			d.Dead = append(d.Dead, k)
		} else if len(d.Live) < n {
			d.Live = append(d.Live, core.KV{Key: k, Value: core.Value(k ^ 0xabc)})
		} else {
			d.Dead = append(d.Dead, k)
		}
	}
	return d
}

func sortKeys(ks []core.Key) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j-1] > ks[j]; j-- {
			ks[j-1], ks[j] = ks[j], ks[j-1]
		}
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, tc := range []struct{ n, nd int }{
		{1, 0}, {0, 1}, {1, 1},
		{RecsPerPage, 0}, {RecsPerPage + 1, 0}, {RecsPerPage * 3, RecsPerPage},
		{1000, 37}, {5000, 0},
	} {
		d := genRun(t, tc.n, tc.nd, int64(tc.n*1000+tc.nd))
		b, err := EncodeFile(d)
		if err != nil {
			t.Fatalf("encode n=%d nd=%d: %v", tc.n, tc.nd, err)
		}
		got, err := DecodeFile(b)
		if err != nil {
			t.Fatalf("decode n=%d nd=%d: %v", tc.n, tc.nd, err)
		}
		if len(got.Live) != len(d.Live) || len(got.Dead) != len(d.Dead) || got.Seq != d.Seq {
			t.Fatalf("roundtrip mismatch: %d/%d/%d vs %d/%d/%d",
				len(got.Live), len(got.Dead), got.Seq, len(d.Live), len(d.Dead), d.Seq)
		}
		for i := range d.Live {
			if got.Live[i] != d.Live[i] {
				t.Fatalf("live[%d] = %+v, want %+v", i, got.Live[i], d.Live[i])
			}
		}
		for i := range d.Dead {
			if got.Dead[i] != d.Dead[i] {
				t.Fatalf("dead[%d] = %d, want %d", i, got.Dead[i], d.Dead[i])
			}
		}
		// Canonical: re-encode reproduces the bytes exactly.
		b2, err := EncodeFile(got)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if string(b2) != string(b) {
			t.Fatalf("re-encode not byte-exact (n=%d nd=%d)", tc.n, tc.nd)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	cases := []*FileData{
		{},
		{Live: []core.KV{{Key: 2}, {Key: 2}}},
		{Live: []core.KV{{Key: 3}, {Key: 2}}},
		{Dead: []core.Key{5, 5}},
		{Live: []core.KV{{Key: 7}}, Dead: []core.Key{7}},
	}
	for i, d := range cases {
		if _, err := EncodeFile(d); err == nil {
			t.Errorf("case %d: EncodeFile accepted invalid data", i)
		}
	}
}

func TestReaderGet(t *testing.T) {
	d := genRun(t, 3000, 200, 42)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.lix")
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for _, kv := range d.Live {
		v, st, err := r.Get(kv.Key)
		if err != nil {
			t.Fatal(err)
		}
		if st != Found || v != kv.Value {
			t.Fatalf("Get(%d) = (%d, %v), want (%d, Found)", kv.Key, v, st, kv.Value)
		}
	}
	for _, k := range d.Dead {
		_, st, err := r.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if st != Deleted {
			t.Fatalf("Get(%d) = %v, want Deleted", k, st)
		}
	}
	// Odd keys were never generated: all absent.
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 2000; i++ {
		k := core.Key(rng.Uint64()) | 1
		_, st, err := r.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if st != Absent {
			t.Fatalf("Get(absent %d) = %v, want Absent", k, st)
		}
	}
	c := r.Counters()
	if c.Hits != uint64(len(d.Live)) || c.TombHits != uint64(len(d.Dead)) {
		t.Fatalf("counters: hits=%d tombHits=%d, want %d/%d", c.Hits, c.TombHits, len(d.Live), len(d.Dead))
	}
	if c.Probes != c.RangeSkips+c.FilterSkips+c.FalsePositives+c.Hits+c.TombHits {
		t.Fatalf("counters don't partition probes: %+v", c)
	}
}

// TestFilterSkipRate pins the structural promise of the per-run learned
// filter: point lookups of absent keys inside the run's key range must
// skip the run (no page read) at least 90% of the time.
func TestFilterSkipRate(t *testing.T) {
	d := genRun(t, 20000, 0, 7)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.lix")
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	lo, hi := d.MinKey(), d.MaxKey()
	rng := rand.New(rand.NewSource(8))
	probes := 0
	for probes < 20000 {
		k := (lo + core.Key(rng.Uint64())%(hi-lo)) | 1 // odd = absent, in range
		if _, st, err := r.Get(k); err != nil {
			t.Fatal(err)
		} else if st != Absent {
			t.Fatalf("Get(absent %d) = %v", k, st)
		}
		probes++
	}
	c := r.Counters()
	consulted := c.Probes - c.RangeSkips
	rate := float64(c.FilterSkips) / float64(consulted)
	if rate < 0.9 {
		t.Fatalf("filter skipped %.1f%% of absent-key probes (skips=%d consulted=%d), want >= 90%%",
			100*rate, c.FilterSkips, consulted)
	}
	t.Logf("filter skip rate on absent keys: %.2f%% (false positives %d, filter %d bits)",
		100*rate, c.FalsePositives, r.FilterBits())
}

func TestTiersNewestWins(t *testing.T) {
	dir := t.TempDir()
	// Old run: keys 2,4,6,...,200 with value key*10.
	old := &FileData{Seq: 1}
	for k := core.Key(2); k <= 200; k += 2 {
		old.Live = append(old.Live, core.KV{Key: k, Value: core.Value(k * 10)})
	}
	// New run: overwrites 2 and 4, tombstones 6, adds 1001.
	nw := &FileData{
		Seq:  2,
		Live: []core.KV{{Key: 2, Value: 999}, {Key: 4, Value: 998}, {Key: 1001, Value: 1}},
		Dead: []core.Key{6},
	}
	oldPath := filepath.Join(dir, "old.lix")
	newPath := filepath.Join(dir, "new.lix")
	if err := WriteFile(oldPath, old); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(newPath, nw); err != nil {
		t.Fatal(err)
	}
	ro, err := Open(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	rn, err := Open(newPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rn.Close()

	tiers := NewTiers([]*Reader{rn, ro})
	checks := []struct {
		k    core.Key
		v    core.Value
		want bool
	}{
		{2, 999, true}, {4, 998, true}, {6, 0, false}, {8, 80, true},
		{200, 2000, true}, {1001, 1, true}, {7, 0, false}, {5000, 0, false},
	}
	for _, c := range checks {
		v, ok, err := tiers.Get(c.k)
		if err != nil {
			t.Fatal(err)
		}
		if ok != c.want || (ok && v != c.v) {
			t.Fatalf("tiers.Get(%d) = (%d, %v), want (%d, %v)", c.k, v, ok, c.v, c.want)
		}
	}

	// Full merge (dropDead): tombstoned key gone, newest values retained.
	merged, err := Merge([]*Reader{rn, ro}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Dead) != 0 {
		t.Fatalf("full merge kept %d tombstones", len(merged.Dead))
	}
	if merged.Seq != 2 {
		t.Fatalf("merged seq = %d, want 2", merged.Seq)
	}
	want := len(old.Live) - 1 + 1 // 6 deleted, 1001 added (2 and 4 overwritten)
	if len(merged.Live) != want {
		t.Fatalf("merged live = %d, want %d", len(merged.Live), want)
	}
	for i := 1; i < len(merged.Live); i++ {
		if merged.Live[i-1].Key >= merged.Live[i].Key {
			t.Fatal("merged output not sorted")
		}
	}
	byKey := make(map[core.Key]core.Value, len(merged.Live))
	for _, kv := range merged.Live {
		byKey[kv.Key] = kv.Value
	}
	if byKey[2] != 999 || byKey[4] != 998 {
		t.Fatal("merge did not prefer newest values")
	}
	if _, ok := byKey[6]; ok {
		t.Fatal("merge resurrected a tombstoned key")
	}

	// Partial merge (keep tombstones): the tombstone must survive.
	kept, err := Merge([]*Reader{rn}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept.Dead) != 1 || kept.Dead[0] != 6 {
		t.Fatalf("partial merge tombstones = %v, want [6]", kept.Dead)
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	d := genRun(t, 1500, 50, 99)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.lix")
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at page and sub-page granularity.
	for _, cut := range []int{len(b) - PageSize, len(b) - 100, PageSize, PageSize / 2, 0} {
		p := filepath.Join(dir, "trunc.lix")
		if err := os.WriteFile(p, b[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Open(p); err == nil {
			r.Close()
			t.Fatalf("Open accepted a run truncated to %d bytes", cut)
		}
	}
	// A bit flip anywhere must be rejected at Open.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 64; i++ {
		mut := append([]byte(nil), b...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= 1 << uint(rng.Intn(8))
		p := filepath.Join(dir, "flip.lix")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := Open(p); err == nil {
			r.Close()
			t.Fatalf("Open accepted a run with bit %d of byte %d flipped", i, pos)
		}
	}
}
