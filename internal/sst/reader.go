package sst

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/lbf"
	"github.com/lix-go/lix/internal/page"
	"github.com/lix-go/lix/internal/segment"
)

const (
	// fenceEps is the PLA error budget for the fence model, in fence-array
	// slots — the same budget the paged PGM kind uses for its leaf fences.
	fenceEps = 8
	// minModelFences is the fence count below which a plain binary search
	// beats a model; small runs skip the PLA build entirely.
	minModelFences = 64
	// filterBitsPerKey sizes each run's learned filter: generous enough
	// that absent-key lookups skip the run well over 90% of the time.
	filterBitsPerKey = 16
	// minFilterBits floors tiny runs' filters.
	minFilterBits = 1024
)

// State is the outcome of a single-run point lookup.
type State uint8

const (
	// Absent: the run says nothing about the key — consult older runs.
	Absent State = iota
	// Found: the run holds a live record for the key.
	Found
	// Deleted: the run holds a tombstone — the key is dead, stop.
	Deleted
)

// Counters is a snapshot of a reader's lookup counters. Probes counts Get
// calls; every probe resolves as exactly one of RangeSkips (key outside
// [min, max], no filter consulted), FilterSkips (learned filter rejected
// it), FalsePositives (filter accepted but the run holds neither record
// nor tombstone), Hits, or TombHits.
type Counters struct {
	Probes         uint64
	RangeSkips     uint64
	FilterSkips    uint64
	FalsePositives uint64
	Hits           uint64
	TombHits       uint64
	PageReads      uint64
}

// add accumulates o into c.
func (c *Counters) add(o Counters) {
	c.Probes += o.Probes
	c.RangeSkips += o.RangeSkips
	c.FilterSkips += o.FilterSkips
	c.FalsePositives += o.FalsePositives
	c.Hits += o.Hits
	c.TombHits += o.TombHits
	c.PageReads += o.PageReads
}

// RunStats describes one open run for gauges and debugging.
type RunStats struct {
	Path       string
	Live       int
	Dead       int
	Seq        uint64
	MinKey     core.Key
	MaxKey     core.Key
	FileBytes  int64
	Fences     int
	Segments   int
	FilterBits uint64
	BackupKeys int
}

// Reader serves point lookups against one immutable run file. The data
// pages stay on disk; in memory the reader keeps only derived structures —
// the fence array (first key of each data page), a PLA model over it, the
// tombstone keys, and the learned filter — all rebuilt at Open the same
// way the paged PGM kind rebuilds its fence model. Methods are safe for
// concurrent use.
type Reader struct {
	f    *os.File
	path string
	size int64

	live      int
	dataPages int
	seq       uint64
	minKey    core.Key
	maxKey    core.Key

	fences []core.Key        // first key of data page i
	model  []segment.Segment // PLA over fences (nil for small runs)
	tombs  []core.Key        // sorted tombstone keys, fully in memory
	filter *lbf.Filter       // membership over live ∪ tombstone keys
	fpr    float64           // filter FPR measured on a holdout at open

	probes    atomic.Uint64
	rangeSkip atomic.Uint64
	filtSkip  atomic.Uint64
	falsePos  atomic.Uint64
	hits      atomic.Uint64
	tombHits  atomic.Uint64
	pageReads atomic.Uint64
}

// pagePool recycles 4 KiB lookup buffers across Get calls.
var pagePool = sync.Pool{New: func() any {
	b := make([]byte, PageSize)
	return &b
}}

// Open validates the run file at path end to end (full canonical decode —
// a torn or corrupted run is rejected here, never served) and builds the
// derived lookup structures.
func Open(path string) (*Reader, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, err := DecodeFile(b)
	if err != nil {
		return nil, fmt.Errorf("sst: %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &Reader{
		f:         f,
		path:      path,
		size:      int64(len(b)),
		live:      len(d.Live),
		dataPages: pagesFor(len(d.Live)),
		seq:       d.Seq,
		minKey:    d.MinKey(),
		maxKey:    d.MaxKey(),
		tombs:     d.Dead,
	}
	// Fence array: the first key of each data page.
	if r.dataPages > 0 {
		r.fences = make([]core.Key, r.dataPages)
		for i := range r.fences {
			r.fences[i] = d.Live[i*RecsPerPage].Key
		}
	}
	if len(r.fences) >= minModelFences {
		xs := make([]float64, len(r.fences))
		for i, k := range r.fences {
			xs[i] = float64(k)
		}
		r.model = segment.BuildOptimal(xs, segment.Positions(len(xs)), fenceEps)
	}
	// Learned filter over every key the run speaks for — live and dead.
	// Zero false negatives is load-bearing twice over: a missed live key
	// would lose a committed write, a missed tombstone would resurrect a
	// deleted one from an older run.
	members := memberKeys(d)
	negs := synthNegatives(members, r.minKey, r.maxKey, d.Seq^r.minKey)
	bits := uint64(len(members)) * filterBitsPerKey
	if bits < minFilterBits {
		bits = minFilterBits
	}
	filter, err := lbf.Train(members, negs, bits, 0)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sst: %s: train filter: %w", path, err)
	}
	r.filter = filter
	// Measure the realized FPR on a holdout batch of absent keys the
	// filter was not trained on; exported on /metrics per run.
	if holdout := synthNegatives(members, r.minKey, r.maxKey, d.Seq^r.maxKey^0x5bf0a8b1); len(holdout) > 0 {
		r.fpr = lbf.MeasureFPR(filter, holdout)
	}
	return r, nil
}

// memberKeys returns the sorted union of live and tombstone keys.
func memberKeys(d *FileData) []core.Key {
	out := make([]core.Key, 0, len(d.Live)+len(d.Dead))
	i, j := 0, 0
	for i < len(d.Live) && j < len(d.Dead) {
		if d.Live[i].Key < d.Dead[j] {
			out = append(out, d.Live[i].Key)
			i++
		} else {
			out = append(out, d.Dead[j])
			j++
		}
	}
	for ; i < len(d.Live); i++ {
		out = append(out, d.Live[i].Key)
	}
	out = append(out, d.Dead[j:]...)
	return out
}

// synthNegatives generates the learned filter's negative training sample:
// deterministic pseudo-random non-member keys, drawn from the run's own
// key range so the classifier learns the in-range boundary it will
// actually be probed on, widened to the full key space if the range is
// too dense to yield enough.
func synthNegatives(members []core.Key, lo, hi core.Key, seed uint64) []core.Key {
	want := len(members)
	if want < 512 {
		want = 512
	}
	if want > 8192 {
		want = 8192
	}
	isMember := func(k core.Key) bool {
		i := core.LowerBound(members, k)
		return i < len(members) && members[i] == k
	}
	negs := make([]core.Key, 0, want)
	x := seed
	span := hi - lo
	for tries := 0; len(negs) < want && tries < want*16; tries++ {
		r := splitmix64(&x)
		var k core.Key
		if span == ^core.Key(0) || span == 0 {
			k = r
		} else {
			k = lo + r%(span+1)
		}
		if !isMember(k) {
			negs = append(negs, k)
		}
	}
	// Dense range fallback: draw from the whole key space.
	for tries := 0; len(negs) < want && tries < want*16; tries++ {
		if k := splitmix64(&x); !isMember(k) {
			negs = append(negs, k)
		}
	}
	return negs
}

// splitmix64 advances x and returns the next value of the splitmix64
// sequence.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Get resolves k against this run alone: Found with the value, Deleted
// when the run tombstones k, Absent when the run says nothing (the caller
// consults older runs). At most one page read per call; absent keys are
// usually rejected by the range check or the learned filter without
// touching disk.
func (r *Reader) Get(k core.Key) (core.Value, State, error) {
	r.probes.Add(1)
	if k < r.minKey || k > r.maxKey {
		r.rangeSkip.Add(1)
		return 0, Absent, nil
	}
	if !r.filter.Contains(k) {
		r.filtSkip.Add(1)
		return 0, Absent, nil
	}
	if i := core.LowerBound(r.tombs, k); i < len(r.tombs) && r.tombs[i] == k {
		r.tombHits.Add(1)
		return 0, Deleted, nil
	}
	if r.live == 0 {
		r.falsePos.Add(1)
		return 0, Absent, nil
	}
	pg := r.pageFor(k)
	bp := pagePool.Get().(*[]byte)
	defer pagePool.Put(bp)
	p := page.Buf(*bp)
	if err := r.readPage(uint64(1+pg), p); err != nil {
		return 0, Absent, err
	}
	if i, ok := p.LeafSearch(k); ok {
		v := p.LeafVal(i)
		r.hits.Add(1)
		return v, Found, nil
	}
	r.falsePos.Add(1)
	return 0, Absent, nil
}

// pageFor returns the data-page index whose key range covers k: the last
// fence ≤ k. The PLA model predicts a slot and a windowed search corrects
// it; the result is verified against the full fence array (the model is
// an accelerator, never an authority) with a binary-search fallback.
func (r *Reader) pageFor(k core.Key) int {
	var i int
	if r.model != nil {
		s := &r.model[segment.Locate(r.model, float64(k))]
		p := int(s.Predict(float64(k)))
		i = core.SearchRange(r.fences, k, p-fenceEps-1, p+fenceEps+2)
		if !((i == 0 || r.fences[i-1] < k) && (i == len(r.fences) || r.fences[i] >= k)) {
			i = core.LowerBound(r.fences, k)
		}
	} else {
		i = core.LowerBound(r.fences, k)
	}
	if i < len(r.fences) && r.fences[i] == k {
		return i
	}
	if i == 0 {
		return 0
	}
	return i - 1
}

// readPage fills p with page id's content, verifying CRC and self-id —
// the last line of defense against corruption that appears after Open.
func (r *Reader) readPage(id uint64, p page.Buf) error {
	n, err := r.f.ReadAt(p, int64(id)*PageSize)
	if n != PageSize {
		return fmt.Errorf("sst: %s: short read of page %d (%d bytes): %v", r.path, id, n, err)
	}
	r.pageReads.Add(1)
	if !p.VerifyCRC() {
		return fmt.Errorf("sst: %s: page %d CRC mismatch (torn or corrupted write)", r.path, id)
	}
	if p.ID() != id {
		return fmt.Errorf("sst: %s: page %d stores id %d (misdirected write)", r.path, id, p.ID())
	}
	return nil
}

// Data re-reads and decodes the whole run — the bulk path for compaction
// merges and recovery.
func (r *Reader) Data() (*FileData, error) {
	b, err := os.ReadFile(r.path)
	if err != nil {
		return nil, err
	}
	d, err := DecodeFile(b)
	if err != nil {
		return nil, fmt.Errorf("sst: %s: %w", r.path, err)
	}
	return d, nil
}

// Counters returns a snapshot of the lookup counters.
func (r *Reader) Counters() Counters {
	return Counters{
		Probes:         r.probes.Load(),
		RangeSkips:     r.rangeSkip.Load(),
		FilterSkips:    r.filtSkip.Load(),
		FalsePositives: r.falsePos.Load(),
		Hits:           r.hits.Load(),
		TombHits:       r.tombHits.Load(),
		PageReads:      r.pageReads.Load(),
	}
}

// Stats describes the open run.
func (r *Reader) Stats() RunStats {
	return RunStats{
		Path:       r.path,
		Live:       r.live,
		Dead:       len(r.tombs),
		Seq:        r.seq,
		MinKey:     r.minKey,
		MaxKey:     r.maxKey,
		FileBytes:  r.size,
		Fences:     len(r.fences),
		Segments:   len(r.model),
		FilterBits: r.filter.Bits(),
		BackupKeys: r.filter.BackupKeys(),
	}
}

// Path returns the run file's path.
func (r *Reader) Path() string { return r.path }

// Seq returns the run's sequence watermark.
func (r *Reader) Seq() uint64 { return r.seq }

// Live returns the number of live records.
func (r *Reader) Live() int { return r.live }

// Dead returns the number of tombstones.
func (r *Reader) Dead() int { return len(r.tombs) }

// FileBytes returns the run file's size.
func (r *Reader) FileBytes() int64 { return r.size }

// FilterBits returns the learned filter's size in bits (model + backup).
func (r *Reader) FilterBits() uint64 { return r.filter.Bits() }

// Filter exposes the run's learned filter (for FPR measurement).
func (r *Reader) Filter() *lbf.Filter { return r.filter }

// MeasuredFPR is the filter's false-positive rate measured at Open on a
// holdout batch of synthesized absent keys.
func (r *Reader) MeasuredFPR() float64 { return r.fpr }

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }
