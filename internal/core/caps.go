package core

// Optional capability interfaces. The layer stack (backend → shard →
// durable → obs) composes through these instead of concrete-type checks:
// each layer *detects* the capability of the index below it with a type
// assertion and *exposes* the same capability above, so a batched or
// parallel fast path survives any number of wrappers. The dispatch
// helpers below fall back to generic per-record loops, which makes the
// capabilities strictly optional: every index gets the batched surface,
// capable indexes get it fast.
//
// BulkBuilder is the one capability that is not an instance method: being
// bulk-buildable is a property of an index *kind* (its constructor), so
// it lives in the kind registry (internal/registry, Kind.Bulk) rather
// than here.

// BatchLookuper resolves many keys in one call. vals[i], oks[i] answer
// keys[i]; implementations may reorder internally (the sharded layer
// groups by shard) but the result slices follow input order.
type BatchLookuper interface {
	LookupBatch(keys []Key) ([]Value, []bool)
}

// BatchLookuperInto is the allocation-free variant of BatchLookuper:
// answers are written into caller-supplied vals and oks slices
// (len(keys) each), so a serving loop can reuse its buffers across
// batches. The sharded layer pins zero allocations per call on this
// path.
type BatchLookuperInto interface {
	LookupBatchInto(keys []Key, vals []Value, oks []bool)
}

// BatchInserter upserts many records in one call. Duplicate keys inside
// one batch resolve later-wins, exactly as a sequential upsert loop
// would (the conformance suite pins this).
type BatchInserter interface {
	InsertBatch(recs []KV)
}

// BatchDeleter removes many keys in one call, reporting per-key whether
// the key was present, with sequential semantics: the first occurrence
// of a duplicated key reports its liveness, later occurrences report
// false.
type BatchDeleter interface {
	DeleteBatch(keys []Key) []bool
}

// RangeSearcher collects every record with lo <= key <= hi into a slice
// in ascending key order. Implementations must return a non-nil slice
// (empty result => empty slice), the façade-wide normalization.
type RangeSearcher interface {
	SearchRange(lo, hi Key) []KV
}

// The narrow read/write surfaces the generic fallbacks need. They are
// subsets of every index interface in the repository, so any index value
// converts implicitly.
type (
	// Getter is the point-read surface.
	Getter interface {
		Get(k Key) (Value, bool)
	}
	// Ranger is the ordered-scan surface.
	Ranger interface {
		Range(lo, hi Key, fn func(Key, Value) bool) int
	}
	// Inserter is the upsert surface.
	Inserter interface {
		Insert(k Key, v Value)
	}
	// Deleter is the delete surface.
	Deleter interface {
		Delete(k Key) bool
	}
)

// LookupBatch resolves keys against ix through its BatchLookuper
// capability when present, else a Get loop. vals[i], oks[i] answer
// keys[i].
func LookupBatch(ix Getter, keys []Key) ([]Value, []bool) {
	if b, ok := ix.(BatchLookuper); ok {
		return b.LookupBatch(keys)
	}
	vals := make([]Value, len(keys))
	oks := make([]bool, len(keys))
	for i, k := range keys {
		vals[i], oks[i] = ix.Get(k)
	}
	return vals, oks
}

// LookupBatchInto resolves keys into the caller-supplied vals and oks
// slices (len(keys) each) through ix's BatchLookuperInto capability when
// present, else a Get loop — either way without allocating.
func LookupBatchInto(ix Getter, keys []Key, vals []Value, oks []bool) {
	if b, ok := ix.(BatchLookuperInto); ok {
		b.LookupBatchInto(keys, vals, oks)
		return
	}
	for i, k := range keys {
		vals[i], oks[i] = ix.Get(k)
	}
}

// InsertBatch upserts recs into ix through its BatchInserter capability
// when present, else an Insert loop (which is trivially later-wins).
func InsertBatch(ix Inserter, recs []KV) {
	if b, ok := ix.(BatchInserter); ok {
		b.InsertBatch(recs)
		return
	}
	for _, r := range recs {
		ix.Insert(r.Key, r.Value)
	}
}

// DeleteBatch removes keys from ix through its BatchDeleter capability
// when present, else a Delete loop. oks[i] reports whether keys[i] was
// present when its turn came (duplicates: first wins, rest read false).
func DeleteBatch(ix Deleter, keys []Key) []bool {
	if b, ok := ix.(BatchDeleter); ok {
		return b.DeleteBatch(keys)
	}
	oks := make([]bool, len(keys))
	for i, k := range keys {
		oks[i] = ix.Delete(k)
	}
	return oks
}

// CollectRange collects every record of ix with lo <= key <= hi in
// ascending key order, through the RangeSearcher capability when present
// (the sharded layer answers with its parallel cross-shard fan-out) else
// a sequential Range scan. The result is always non-nil, and an inverted
// interval yields an empty slice.
func CollectRange(ix Ranger, lo, hi Key) []KV {
	if rs, ok := ix.(RangeSearcher); ok {
		if out := rs.SearchRange(lo, hi); out != nil {
			return out
		}
		return []KV{}
	}
	out := []KV{}
	if lo > hi {
		return out
	}
	ix.Range(lo, hi, func(k Key, v Value) bool {
		out = append(out, KV{Key: k, Value: v})
		return true
	})
	return out
}
