package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLowerUpperBound(t *testing.T) {
	keys := []Key{2, 4, 4, 4, 9, 15}
	cases := []struct {
		k      Key
		lo, up int
	}{
		{0, 0, 0}, {2, 0, 1}, {3, 1, 1}, {4, 1, 4}, {5, 4, 4},
		{9, 4, 5}, {14, 5, 5}, {15, 5, 6}, {16, 6, 6},
	}
	for _, c := range cases {
		if got := LowerBound(keys, c.k); got != c.lo {
			t.Errorf("LowerBound(%d) = %d, want %d", c.k, got, c.lo)
		}
		if got := UpperBound(keys, c.k); got != c.up {
			t.Errorf("UpperBound(%d) = %d, want %d", c.k, got, c.up)
		}
	}
}

func TestLowerBoundEmpty(t *testing.T) {
	if got := LowerBound(nil, 5); got != 0 {
		t.Fatalf("LowerBound(nil) = %d", got)
	}
	if got := ExponentialSearch(nil, 5, 0); got != 0 {
		t.Fatalf("ExponentialSearch(nil) = %d", got)
	}
}

func TestSearchRangeClamps(t *testing.T) {
	keys := []Key{1, 3, 5, 7, 9}
	if got := SearchRange(keys, 5, -10, 100); got != 2 {
		t.Fatalf("SearchRange clamp = %d, want 2", got)
	}
	if got := SearchRange(keys, 0, 3, 1); got != 1 {
		t.Fatalf("SearchRange inverted = %d, want 1 (lo clamped down to hi)", got)
	}
}

// Property: for any sorted slice and key, SearchRange with a window known to
// contain the answer agrees with LowerBound, and ExponentialSearch from any
// starting position agrees with LowerBound.
func TestSearchAgreesWithLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(raw []uint64, probe uint64, start int) bool {
		keys := make([]Key, len(raw))
		copy(keys, raw)
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		want := LowerBound(keys, probe)
		if got := SearchRange(keys, probe, 0, len(keys)); got != want {
			return false
		}
		if got := ExponentialSearch(keys, probe, start%(len(keys)+1)); got != want {
			return false
		}
		// A window around the true position must also find it.
		lo := want - rng.Intn(3)
		hi := want + 1 + rng.Intn(3)
		return SearchRange(keys, probe, lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialSearchFarStart(t *testing.T) {
	keys := make([]Key, 1000)
	for i := range keys {
		keys[i] = Key(i * 2)
	}
	for _, start := range []int{0, 1, 500, 999, -5, 5000} {
		for _, k := range []Key{0, 1, 2, 999, 1000, 1998, 1999, 2000} {
			want := LowerBound(keys, k)
			if got := ExponentialSearch(keys, k, start); got != want {
				t.Fatalf("ExponentialSearch(k=%d, start=%d) = %d, want %d", k, start, got, want)
			}
		}
	}
}

func TestRectBasics(t *testing.T) {
	r, err := NewRect(Point{0, 0}, Point{10, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 5}) || !r.Contains(Point{5, 2.5}) {
		t.Fatal("Contains inclusive bounds failed")
	}
	if r.Contains(Point{10.1, 0}) || r.Contains(Point{-0.1, 0}) {
		t.Fatal("Contains accepted outside point")
	}
	if r.Area() != 50 {
		t.Fatalf("Area = %g", r.Area())
	}
	if r.Margin() != 15 {
		t.Fatalf("Margin = %g", r.Margin())
	}
	c := r.Center()
	if c[0] != 5 || c[1] != 2.5 {
		t.Fatalf("Center = %v", c)
	}
	if _, err := NewRect(Point{1}, Point{0}); err == nil {
		t.Fatal("NewRect accepted inverted bounds")
	}
	if _, err := NewRect(Point{1}, Point{0, 2}); err == nil {
		t.Fatal("NewRect accepted mismatched dims")
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Min: Point{0, 0}, Max: Point{4, 4}}
	b := Rect{Min: Point{4, 4}, Max: Point{8, 8}} // touching corner counts
	c := Rect{Min: Point{5, 5}, Max: Point{8, 8}}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("touching rects should intersect")
	}
	if a.Intersects(c) || c.Intersects(a) {
		t.Fatal("disjoint rects should not intersect")
	}
	if !a.ContainsRect(Rect{Min: Point{1, 1}, Max: Point{2, 2}}) {
		t.Fatal("ContainsRect failed")
	}
	if a.ContainsRect(b) {
		t.Fatal("ContainsRect accepted overflowing rect")
	}
}

func TestRectExpandAndEnlargement(t *testing.T) {
	a := Rect{Min: Point{0, 0}, Max: Point{2, 2}}
	grew := a.Clone().Expand(Rect{Min: Point{1, 1}, Max: Point{5, 1.5}})
	if grew.Max[0] != 5 || grew.Max[1] != 2 || grew.Min[0] != 0 {
		t.Fatalf("Expand = %+v", grew)
	}
	enl := a.EnlargementArea(Rect{Min: Point{1, 1}, Max: Point{5, 1.5}})
	if enl != 10-4 {
		t.Fatalf("EnlargementArea = %g, want 6", enl)
	}
	p := a.Clone().ExpandPoint(Point{-1, 3})
	if p.Min[0] != -1 || p.Max[1] != 3 {
		t.Fatalf("ExpandPoint = %+v", p)
	}
}

func TestMinDistSq(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{2, 2}}
	if d := r.MinDistSq(Point{1, 1}); d != 0 {
		t.Fatalf("inside dist = %g", d)
	}
	if d := r.MinDistSq(Point{5, 2}); d != 9 {
		t.Fatalf("right dist = %g", d)
	}
	if d := r.MinDistSq(Point{-3, -4}); d != 25 {
		t.Fatalf("corner dist = %g", d)
	}
}

func TestPointOps(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	q[0] = 9
	if p[0] != 1 {
		t.Fatal("Clone aliases memory")
	}
	if !p.Equal(Point{1, 2, 3}) || p.Equal(Point{1, 2}) || p.Equal(Point{1, 2, 4}) {
		t.Fatal("Equal misbehaves")
	}
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("Dist = %g", d)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Fatal("Clamp misbehaves")
	}
}

func TestKVSliceSort(t *testing.T) {
	s := KVSlice{{3, 0}, {1, 0}, {2, 0}}
	sort.Sort(s)
	if s[0].Key != 1 || s[1].Key != 2 || s[2].Key != 3 {
		t.Fatalf("sorted = %v", s)
	}
	if LowerBoundKV([]KV(s), 2) != 1 || SearchRangeKV([]KV(s), 2, 0, 3) != 1 {
		t.Fatal("KV lower bound misbehaves")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Name: "x", Count: 1, IndexBytes: 2, DataBytes: 3, Height: 4, Models: 5}
	if s.String() == "" {
		t.Fatal("empty Stats string")
	}
}
