package core

import (
	"reflect"
	"sort"
	"testing"
)

// mapIndex is a minimal index with no batch capabilities: every dispatch
// helper must fall back to its per-record loop.
type mapIndex struct {
	m map[Key]Value
}

func newMapIndex() *mapIndex { return &mapIndex{m: map[Key]Value{}} }

func (x *mapIndex) Get(k Key) (Value, bool) { v, ok := x.m[k]; return v, ok }
func (x *mapIndex) Insert(k Key, v Value)   { x.m[k] = v }
func (x *mapIndex) Delete(k Key) bool {
	_, ok := x.m[k]
	delete(x.m, k)
	return ok
}
func (x *mapIndex) Range(lo, hi Key, fn func(Key, Value) bool) int {
	keys := make([]Key, 0, len(x.m))
	for k := range x.m {
		if k >= lo && k <= hi {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	n := 0
	for _, k := range keys {
		n++
		if !fn(k, x.m[k]) {
			break
		}
	}
	return n
}

// capIndex embeds mapIndex and adds native batch capabilities that
// record whether they were used, so dispatch can be asserted.
type capIndex struct {
	*mapIndex
	batched int
}

func (x *capIndex) LookupBatch(keys []Key) ([]Value, []bool) {
	x.batched++
	vals := make([]Value, len(keys))
	oks := make([]bool, len(keys))
	for i, k := range keys {
		vals[i], oks[i] = x.Get(k)
	}
	return vals, oks
}

func (x *capIndex) InsertBatch(recs []KV) {
	x.batched++
	for _, r := range recs {
		x.Insert(r.Key, r.Value)
	}
}

func (x *capIndex) DeleteBatch(keys []Key) []bool {
	x.batched++
	oks := make([]bool, len(keys))
	for i, k := range keys {
		oks[i] = x.Delete(k)
	}
	return oks
}

func (x *capIndex) SearchRange(lo, hi Key) []KV {
	x.batched++
	// Deliberately return nil for empty results: CollectRange must
	// normalize it to an empty slice.
	var out []KV
	x.Range(lo, hi, func(k Key, v Value) bool {
		out = append(out, KV{Key: k, Value: v})
		return true
	})
	return out
}

func TestBatchFallbacks(t *testing.T) {
	ix := newMapIndex()
	InsertBatch(ix, []KV{{Key: 1, Value: 10}, {Key: 2, Value: 20}, {Key: 1, Value: 11}})
	if v, ok := ix.Get(1); !ok || v != 11 {
		t.Fatalf("later-wins fallback: Get(1) = (%d, %v), want (11, true)", v, ok)
	}
	vals, oks := LookupBatch(ix, []Key{1, 2, 3})
	if !reflect.DeepEqual(vals, []Value{11, 20, 0}) || !reflect.DeepEqual(oks, []bool{true, true, false}) {
		t.Fatalf("LookupBatch fallback = %v, %v", vals, oks)
	}
	got := CollectRange(ix, 0, ^Key(0))
	want := []KV{{Key: 1, Value: 11}, {Key: 2, Value: 20}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CollectRange = %v, want %v", got, want)
	}
	if out := CollectRange(ix, 10, 5); out == nil || len(out) != 0 {
		t.Fatalf("CollectRange inverted interval = %v, want non-nil empty", out)
	}
	dels := DeleteBatch(ix, []Key{2, 2, 9})
	if !reflect.DeepEqual(dels, []bool{true, false, false}) {
		t.Fatalf("DeleteBatch fallback = %v, want [true false false]", dels)
	}
}

func TestBatchDispatch(t *testing.T) {
	ix := &capIndex{mapIndex: newMapIndex()}
	InsertBatch(ix, []KV{{Key: 5, Value: 50}})
	LookupBatch(ix, []Key{5})
	DeleteBatch(ix, []Key{5})
	if out := CollectRange(ix, 0, ^Key(0)); out == nil || len(out) != 0 {
		t.Fatalf("CollectRange did not normalize nil SearchRange result: %v", out)
	}
	if ix.batched != 4 {
		t.Fatalf("native capabilities used %d times, want 4", ix.batched)
	}
}
