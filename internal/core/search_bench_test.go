package core

import "testing"

// searchRangeBaseline is a copy of SearchRange without the recorder check,
// kept here so the benchmarks below can measure the exact overhead the
// instrumentation adds to the disabled path. ISSUE acceptance: <= 2 ns/op.
func searchRangeBaseline(keys []Key, k Key, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(keys) {
		hi = len(keys)
	}
	if lo > hi {
		lo = hi
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

var sinkIdx int

func benchKeys() []Key {
	keys := make([]Key, 1<<16)
	for i := range keys {
		keys[i] = Key(2 * i)
	}
	return keys
}

// BenchmarkSearchRangeBaseline is the pre-instrumentation cost of a bounded
// search over a typical 64-wide error window.
func BenchmarkSearchRangeBaseline(b *testing.B) {
	keys := benchKeys()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := (i * 4096) & (len(keys) - 1)
		lo := p - 32
		hi := p + 32
		sinkIdx = searchRangeBaseline(keys, keys[p], lo, hi)
	}
}

// BenchmarkSearchRangeDisabled is the same workload through the shipping
// SearchRange with no recorder installed: the delta against the baseline is
// the disabled-path overhead (one atomic pointer load + branch).
func BenchmarkSearchRangeDisabled(b *testing.B) {
	SetSearchRecorder(nil)
	keys := benchKeys()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := (i * 4096) & (len(keys) - 1)
		lo := p - 32
		hi := p + 32
		sinkIdx = SearchRange(keys, keys[p], lo, hi)
	}
}

type benchRecorder struct{ probes, window uint64 }

func (r *benchRecorder) RecordSearch(probes, window int) {
	r.probes += uint64(probes)
	r.window += uint64(window)
}

// BenchmarkSearchRangeEnabled shows the cost with a recorder attached: the
// counted twin loop plus one RecordSearch call per search.
func BenchmarkSearchRangeEnabled(b *testing.B) {
	rec := &benchRecorder{}
	SetSearchRecorder(rec)
	defer SetSearchRecorder(nil)
	keys := benchKeys()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := (i * 4096) & (len(keys) - 1)
		lo := p - 32
		hi := p + 32
		sinkIdx = SearchRange(keys, keys[p], lo, hi)
	}
}

func BenchmarkExponentialSearchDisabled(b *testing.B) {
	SetSearchRecorder(nil)
	keys := benchKeys()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := (i * 4096) & (len(keys) - 1)
		sinkIdx = ExponentialSearch(keys, keys[p], p+(i&7))
	}
}
