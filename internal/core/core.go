// Package core defines the shared vocabulary of the lix library: key and
// record types for one-dimensional indexes, points and rectangles for
// multi-dimensional indexes, and the bounded-search primitives that every
// learned index uses to correct model mispredictions.
//
// Learned indexes predict an approximate position for a key and then run a
// last-mile search inside an error window around the prediction. The
// SearchRange, ExponentialSearch and LowerBound helpers in this package are
// that last mile; keeping them in one place makes the cost model of every
// index in the library comparable.
package core

import (
	"fmt"
	"math"
	"strings"
)

// Key is the one-dimensional key type used across the library. SOSD and the
// surveyed learned-index papers use unsigned 64-bit keys; we follow them.
type Key = uint64

// Value is the payload associated with a key. Indexes in this library store
// fixed-size payloads, as in the SOSD benchmark (a record identifier).
type Value = uint64

// KV is a key/value record.
type KV struct {
	Key   Key
	Value Value
}

// KVSlice attaches sorting by key to a []KV.
type KVSlice []KV

func (s KVSlice) Len() int           { return len(s) }
func (s KVSlice) Less(i, j int) bool { return s[i].Key < s[j].Key }
func (s KVSlice) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// LowerBound returns the smallest index i in keys such that keys[i] >= k,
// or len(keys) if no such index exists. keys must be sorted ascending.
func LowerBound(keys []Key, k Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBound returns the smallest index i in keys such that keys[i] > k,
// or len(keys) if no such index exists. keys must be sorted ascending.
func UpperBound(keys []Key, k Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LowerBoundKV is LowerBound over a []KV sorted by key.
func LowerBoundKV(recs []KV, k Key) int {
	lo, hi := 0, len(recs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if recs[mid].Key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SearchRange runs LowerBound restricted to keys[lo:hi] (clamped to valid
// bounds) and returns an absolute index into keys. It is the standard
// error-window correction step after a model prediction: the model
// guarantees the true position lies in [lo, hi).
func SearchRange(keys []Key, k Key, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(keys) {
		hi = len(keys)
	}
	if lo > hi {
		lo = hi
	}
	if b := searchRec.Load(); b != nil {
		idx, probes := searchRangeCounted(keys, k, lo, hi)
		b.r.RecordSearch(probes, hi-lo)
		return idx
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SearchRangeKV is SearchRange over []KV.
func SearchRangeKV(recs []KV, k Key, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(recs) {
		hi = len(recs)
	}
	if lo > hi {
		lo = hi
	}
	if b := searchRec.Load(); b != nil {
		idx, probes := searchRangeKVCounted(recs, k, lo, hi)
		b.r.RecordSearch(probes, hi-lo)
		return idx
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if recs[mid].Key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ExponentialSearch locates the lower bound of k in keys starting from a
// predicted position pos, doubling the step until the window brackets k and
// then binary-searching inside it. Cost is O(log distance(pos, true)) which
// is why ALEX and LIPP prefer it when predictions are usually near-exact.
func ExponentialSearch(keys []Key, k Key, pos int) int {
	if b := searchRec.Load(); b != nil {
		return exponentialSearchRecorded(keys, k, pos, b.r)
	}
	n := len(keys)
	if n == 0 {
		return 0
	}
	if pos < 0 {
		pos = 0
	}
	if pos >= n {
		pos = n - 1
	}
	if keys[pos] < k {
		// Gallop right.
		step := 1
		lo, hi := pos+1, pos+1
		for hi < n && keys[hi] < k {
			lo = hi + 1
			step <<= 1
			hi += step
		}
		if hi > n {
			hi = n
		}
		return SearchRange(keys, k, lo, hi)
	}
	// Gallop left.
	step := 1
	lo, hi := pos, pos
	for lo > 0 && keys[lo-1] >= k {
		hi = lo
		step <<= 1
		lo -= step
	}
	if lo < 0 {
		lo = 0
	}
	return SearchRange(keys, k, lo, hi)
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ---------------------------------------------------------------------------
// Multi-dimensional vocabulary
// ---------------------------------------------------------------------------

// Point is a point in d-dimensional space. All points handled by one index
// instance must share the same dimensionality.
type Point []float64

// Dim returns the dimensionality of the point.
func (p Point) Dim() int { return len(p) }

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Sqrt(p.DistSq(q)) }

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Rect is an axis-aligned d-dimensional rectangle with inclusive bounds
// [Min[i], Max[i]] in every dimension i.
type Rect struct {
	Min, Max Point
}

// NewRect builds a rect from min/max corners, validating shape.
func NewRect(min, max Point) (Rect, error) {
	if len(min) != len(max) {
		return Rect{}, fmt.Errorf("core: rect corners have dims %d and %d", len(min), len(max))
	}
	for i := range min {
		if min[i] > max[i] {
			return Rect{}, fmt.Errorf("core: rect min[%d]=%g > max[%d]=%g", i, min[i], i, max[i])
		}
	}
	return Rect{Min: min, Max: max}, nil
}

// RectOf returns the degenerate rectangle containing only p.
func RectOf(p Point) Rect { return Rect{Min: p.Clone(), Max: p.Clone()} }

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Min) }

// Contains reports whether p lies inside r (inclusive bounds).
func (r Rect) Contains(p Point) bool {
	for i := range r.Min {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s overlap (inclusive bounds).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Min {
		if s.Max[i] < r.Min[i] || s.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Expand grows r in place to cover s and returns r.
func (r Rect) Expand(s Rect) Rect {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] {
			r.Min[i] = s.Min[i]
		}
		if s.Max[i] > r.Max[i] {
			r.Max[i] = s.Max[i]
		}
	}
	return r
}

// ExpandPoint grows r in place to cover p and returns r.
func (r Rect) ExpandPoint(p Point) Rect {
	for i := range r.Min {
		if p[i] < r.Min[i] {
			r.Min[i] = p[i]
		}
		if p[i] > r.Max[i] {
			r.Max[i] = p[i]
		}
	}
	return r
}

// Area returns the d-dimensional volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// Margin returns the sum of edge lengths of r.
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Min))
	for i := range r.Min {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// Clone deep-copies r.
func (r Rect) Clone() Rect {
	return Rect{Min: r.Min.Clone(), Max: r.Max.Clone()}
}

// MinDistSq returns the squared minimum distance from p to r (0 if inside).
// It is the standard kNN pruning bound for tree indexes.
func (r Rect) MinDistSq(p Point) float64 {
	var s float64
	for i := range r.Min {
		switch {
		case p[i] < r.Min[i]:
			d := r.Min[i] - p[i]
			s += d * d
		case p[i] > r.Max[i]:
			d := p[i] - r.Max[i]
			s += d * d
		}
	}
	return s
}

// EnlargementArea returns the increase in area of r if expanded to cover s.
func (r Rect) EnlargementArea(s Rect) float64 {
	return r.Clone().Expand(s).Area() - r.Area()
}

// PV is a point/value record for multi-dimensional indexes.
type PV struct {
	Point Point
	Value Value
}

// ---------------------------------------------------------------------------
// Index statistics
// ---------------------------------------------------------------------------

// Stats reports structural statistics common to all indexes in the library,
// used by the benchmark harness to produce the size columns of the
// experiment tables.
type Stats struct {
	// Name identifies the index implementation.
	Name string
	// Count is the number of records currently indexed.
	Count int
	// IndexBytes is the memory consumed by the index structure itself,
	// excluding the record payloads when they are stored out-of-index.
	IndexBytes int
	// DataBytes is the memory consumed by indexed records.
	DataBytes int
	// Height is the number of levels from root to data (0 for flat).
	Height int
	// Models is the number of learned models, segments, or nodes.
	Models int
}

// String renders a compact human-readable summary. Height and Models are
// omitted when zero: for those two fields zero means "not applicable"
// (flat structures have no height to speak of, baselines have no models),
// and rendering "h=0 models=0" made that indistinguishable from an index
// that simply forgot to fill them in. The always-present fields render in
// a fixed order, so the output is stable and machine-greppable.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s{n=%d idx=%dB data=%dB", s.Name, s.Count, s.IndexBytes, s.DataBytes)
	if s.Height != 0 {
		fmt.Fprintf(&b, " h=%d", s.Height)
	}
	if s.Models != 0 {
		fmt.Fprintf(&b, " models=%d", s.Models)
	}
	b.WriteByte('}')
	return b.String()
}
