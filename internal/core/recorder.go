package core

import "sync/atomic"

// SearchRecorder receives per-search instrumentation from the bounded
// last-mile search helpers (SearchRange, SearchRangeKV, ExponentialSearch).
// A recorder observes the cost model of the paper directly: probes is the
// number of key comparisons the correction step performed, window is the
// width of the error window it searched. obs.Metrics implements this
// interface.
type SearchRecorder interface {
	RecordSearch(probes, window int)
}

type searchRecBox struct{ r SearchRecorder }

// searchRec holds the process-wide recorder. The disabled path — no
// recorder set — costs each search helper a single atomic pointer load and
// branch; the benchmark in search_bench_test.go pins that overhead at
// <= 2 ns/op, and DESIGN.md records the measured numbers.
var searchRec atomic.Pointer[searchRecBox]

// SetSearchRecorder installs r as the process-wide search recorder; nil
// disables recording. Safe to call concurrently with in-flight searches:
// the switch is an atomic pointer swap, and searches that already loaded
// the old recorder finish recording to it.
func SetSearchRecorder(r SearchRecorder) {
	if r == nil {
		searchRec.Store(nil)
		return
	}
	searchRec.Store(&searchRecBox{r: r})
}

// ActiveSearchRecorder returns the installed recorder, or nil when
// recording is disabled.
func ActiveSearchRecorder() SearchRecorder {
	if b := searchRec.Load(); b != nil {
		return b.r
	}
	return nil
}

// searchRangeCounted is the recording twin of the SearchRange loop: same
// result, plus the number of probes performed. The caller has already
// clamped [lo, hi).
func searchRangeCounted(keys []Key, k Key, lo, hi int) (idx, probes int) {
	for lo < hi {
		probes++
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, probes
}

// searchRangeKVCounted is searchRangeCounted over []KV.
func searchRangeKVCounted(recs []KV, k Key, lo, hi int) (idx, probes int) {
	for lo < hi {
		probes++
		mid := int(uint(lo+hi) >> 1)
		if recs[mid].Key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, probes
}

// exponentialSearchRecorded is the recording twin of ExponentialSearch: it
// counts every gallop comparison plus the probes of the final bounded
// binary search, and records them with the width of the bracketed window.
// It records exactly once per call (the inner search does not re-record).
func exponentialSearchRecorded(keys []Key, k Key, pos int, r SearchRecorder) int {
	n := len(keys)
	if n == 0 {
		r.RecordSearch(0, 0)
		return 0
	}
	if pos < 0 {
		pos = 0
	}
	if pos >= n {
		pos = n - 1
	}
	probes := 1 // the initial keys[pos] comparison
	var lo, hi int
	if keys[pos] < k {
		// Gallop right.
		step := 1
		lo, hi = pos+1, pos+1
		for hi < n && keys[hi] < k {
			probes++
			lo = hi + 1
			step <<= 1
			hi += step
		}
		if hi > n {
			hi = n
		}
	} else {
		// Gallop left.
		step := 1
		lo, hi = pos, pos
		for lo > 0 && keys[lo-1] >= k {
			probes++
			hi = lo
			step <<= 1
			lo -= step
		}
		if lo < 0 {
			lo = 0
		}
	}
	idx, binProbes := searchRangeCounted(keys, k, lo, hi)
	r.RecordSearch(probes+binProbes, hi-lo)
	return idx
}
