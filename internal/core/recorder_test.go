package core

import "testing"

// captureRecorder stores every recorded search.
type captureRecorder struct {
	probes, windows []int
}

func (c *captureRecorder) RecordSearch(probes, window int) {
	c.probes = append(c.probes, probes)
	c.windows = append(c.windows, window)
}

func sortedKeys(n int) []Key {
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key(3 * i)
	}
	return keys
}

func TestSearchRecorderLifecycle(t *testing.T) {
	if ActiveSearchRecorder() != nil {
		t.Fatal("recorder set at test start")
	}
	rec := &captureRecorder{}
	SetSearchRecorder(rec)
	defer SetSearchRecorder(nil)
	if ActiveSearchRecorder() == nil {
		t.Fatal("ActiveSearchRecorder nil after set")
	}
	SetSearchRecorder(nil)
	if ActiveSearchRecorder() != nil {
		t.Fatal("recorder survives nil set")
	}
}

func TestSearchRangeRecords(t *testing.T) {
	keys := sortedKeys(1000)
	rec := &captureRecorder{}
	SetSearchRecorder(rec)
	defer SetSearchRecorder(nil)

	want := SearchRange(keys, 301, 80, 140)
	SetSearchRecorder(nil)
	plain := SearchRange(keys, 301, 80, 140)
	if want != plain {
		t.Fatalf("recorded SearchRange = %d, plain = %d", want, plain)
	}
	if len(rec.probes) != 1 {
		t.Fatalf("recorded %d searches, want 1", len(rec.probes))
	}
	if rec.windows[0] != 60 {
		t.Fatalf("window = %d, want 60", rec.windows[0])
	}
	// Binary search over a window of 60 takes ceil(log2(60)) = 6 probes.
	if rec.probes[0] != 6 {
		t.Fatalf("probes = %d, want 6", rec.probes[0])
	}
}

func TestSearchRangeKVRecords(t *testing.T) {
	recs := make([]KV, 256)
	for i := range recs {
		recs[i] = KV{Key: Key(2 * i), Value: Value(i)}
	}
	rec := &captureRecorder{}
	SetSearchRecorder(rec)
	defer SetSearchRecorder(nil)

	got := SearchRangeKV(recs, 100, 0, len(recs))
	if got != 50 {
		t.Fatalf("SearchRangeKV = %d, want 50", got)
	}
	if len(rec.probes) != 1 || rec.windows[0] != 256 || rec.probes[0] != 8 {
		t.Fatalf("recorded (probes=%v, windows=%v)", rec.probes, rec.windows)
	}
}

func TestExponentialSearchRecordsOnce(t *testing.T) {
	keys := sortedKeys(4096)
	rec := &captureRecorder{}
	SetSearchRecorder(rec)
	defer SetSearchRecorder(nil)

	// Near-exact prediction (distance 0) and a far miss.
	for _, c := range []struct {
		k   Key
		pos int
	}{
		{Key(3 * 2000), 2000}, // exact hit
		{Key(3 * 2000), 100},  // long gallop right
		{Key(3 * 10), 4000},   // long gallop left
		{0, 0},
	} {
		rec.probes = rec.probes[:0]
		got := ExponentialSearch(keys, c.k, c.pos)
		SetSearchRecorder(nil)
		plain := ExponentialSearch(keys, c.k, c.pos)
		SetSearchRecorder(rec)
		if got != plain {
			t.Fatalf("recorded ExponentialSearch(%d, %d) = %d, plain = %d", c.k, c.pos, got, plain)
		}
		if len(rec.probes) != 1 {
			t.Fatalf("ExponentialSearch(%d, %d) recorded %d searches, want exactly 1",
				c.k, c.pos, len(rec.probes))
		}
	}
	// An exact prediction must cost far fewer probes than a far miss: that
	// gradient is the whole point of recording probes per lookup.
	rec.probes = rec.probes[:0]
	ExponentialSearch(keys, Key(3*2000), 2000)
	exact := rec.probes[0]
	rec.probes = rec.probes[:0]
	ExponentialSearch(keys, Key(3*2000), 10)
	far := rec.probes[0]
	if exact >= far {
		t.Fatalf("exact prediction cost %d probes, far miss %d — no gradient", exact, far)
	}
}

func TestExponentialSearchRecordsEmpty(t *testing.T) {
	rec := &captureRecorder{}
	SetSearchRecorder(rec)
	defer SetSearchRecorder(nil)
	if got := ExponentialSearch(nil, 5, 0); got != 0 {
		t.Fatalf("empty ExponentialSearch = %d", got)
	}
	if len(rec.probes) != 1 || rec.probes[0] != 0 || rec.windows[0] != 0 {
		t.Fatalf("empty search recorded %v/%v", rec.probes, rec.windows)
	}
}

// TestStatsStringGolden pins the Stats rendering: fields whose zero value
// means "not applicable" (Height, Models) are omitted instead of printed
// as an ambiguous 0.
func TestStatsStringGolden(t *testing.T) {
	cases := []struct {
		in   Stats
		want string
	}{
		{
			Stats{Name: "x", Count: 1, IndexBytes: 2, DataBytes: 3, Height: 4, Models: 5},
			"x{n=1 idx=2B data=3B h=4 models=5}",
		},
		{
			Stats{Name: "binary-search", Count: 10, DataBytes: 160, Height: 1},
			"binary-search{n=10 idx=0B data=160B h=1}",
		},
		{
			Stats{Name: "flat", Count: 7, IndexBytes: 64, DataBytes: 112, Models: 3},
			"flat{n=7 idx=64B data=112B models=3}",
		},
		{
			Stats{Name: "empty"},
			"empty{n=0 idx=0B data=0B}",
		},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Stats%+v.String() = %q, want %q", c.in, got, c.want)
		}
	}
}
