// Package drift provides model-drift detection for learned indexes (paper
// §6.3): changes in the data or query distribution show up as growing
// last-mile search costs, and a detector watching that signal decides when
// to retrain. Two standard detectors are provided — an EWMA ratio test and
// the Page–Hinkley cumulative test — both stdlib-only and allocation-free
// on the observe path, so they can sit on an index's hot path.
//
// Typical use: feed Observe the per-lookup correction cost (search-window
// width, exponential-search displacement, or delta-buffer hit depth); when
// it returns true, rebuild or retrain the index and Reset the detector
// with the new baseline.
package drift

import (
	"fmt"
	"math"
)

// EWMA flags drift when an exponentially weighted moving average of the
// observed cost exceeds Threshold times the baseline cost.
type EWMA struct {
	baseline  float64
	alpha     float64
	threshold float64
	ewma      float64
	n         int
	warmup    int
}

// NewEWMA returns an EWMA detector. baseline is the expected per-operation
// cost right after (re)training; threshold is the ratio that signals drift
// (e.g. 2.0 = costs doubled); alpha is the smoothing factor (0 selects
// 0.01, ~100-observation memory).
func NewEWMA(baseline, threshold, alpha float64) (*EWMA, error) {
	if baseline <= 0 {
		return nil, fmt.Errorf("drift: baseline must be positive, got %g", baseline)
	}
	if threshold <= 1 {
		return nil, fmt.Errorf("drift: threshold must exceed 1, got %g", threshold)
	}
	if alpha == 0 {
		alpha = 0.01
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("drift: alpha must be in (0,1], got %g", alpha)
	}
	return &EWMA{baseline: baseline, alpha: alpha, threshold: threshold,
		ewma: baseline, warmup: int(2 / alpha)}, nil
}

// Observe records one cost sample and reports whether drift is signaled.
func (d *EWMA) Observe(cost float64) bool {
	d.ewma += d.alpha * (cost - d.ewma)
	d.n++
	if d.n < d.warmup {
		return false
	}
	return d.ewma > d.threshold*d.baseline
}

// Ratio returns the current smoothed cost relative to the baseline.
func (d *EWMA) Ratio() float64 { return d.ewma / d.baseline }

// Reset re-arms the detector after a retrain with a new baseline.
func (d *EWMA) Reset(baseline float64) {
	if baseline > 0 {
		d.baseline = baseline
	}
	d.ewma = d.baseline
	d.n = 0
}

// PageHinkley is the Page–Hinkley sequential change detector: it
// accumulates deviations of the observed cost above the running mean and
// signals when the accumulated drift exceeds Lambda. It reacts to sustained
// shifts and ignores isolated spikes.
type PageHinkley struct {
	delta  float64 // magnitude tolerance
	lambda float64 // detection threshold
	mean   float64
	mT     float64 // cumulative deviation
	minMT  float64
	n      int
}

// NewPageHinkley returns a Page–Hinkley detector. delta is the tolerated
// deviation per observation (in cost units); lambda is the cumulative
// deviation that signals drift.
func NewPageHinkley(delta, lambda float64) (*PageHinkley, error) {
	if delta < 0 || lambda <= 0 {
		return nil, fmt.Errorf("drift: need delta >= 0 and lambda > 0 (got %g, %g)", delta, lambda)
	}
	return &PageHinkley{delta: delta, lambda: lambda, minMT: math.Inf(1)}, nil
}

// Observe records one cost sample and reports whether drift is signaled.
func (d *PageHinkley) Observe(cost float64) bool {
	d.n++
	d.mean += (cost - d.mean) / float64(d.n)
	d.mT += cost - d.mean - d.delta
	if d.mT < d.minMT {
		d.minMT = d.mT
	}
	return d.mT-d.minMT > d.lambda
}

// Reset re-arms the detector after a retrain.
func (d *PageHinkley) Reset() {
	d.mean, d.mT, d.n = 0, 0, 0
	d.minMT = math.Inf(1)
}

// Excess returns the current accumulated deviation above the minimum, the
// statistic compared against lambda.
func (d *PageHinkley) Excess() float64 {
	if math.IsInf(d.minMT, 1) {
		return 0
	}
	return d.mT - d.minMT
}
