package drift

import (
	"math/rand"
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
	"github.com/lix-go/lix/internal/fiting"
)

func TestEWMAStationaryNoFalseAlarm(t *testing.T) {
	d, err := NewEWMA(10, 2.0, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		// Stationary: mean 10 with noise.
		if d.Observe(10 + r.NormFloat64()*3) {
			t.Fatalf("false alarm at %d (ratio %g)", i, d.Ratio())
		}
	}
}

func TestEWMADetectsShift(t *testing.T) {
	d, _ := NewEWMA(10, 2.0, 0.02)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		if d.Observe(10 + r.NormFloat64()*2) {
			t.Fatal("false alarm during stationary phase")
		}
	}
	fired := -1
	for i := 0; i < 2000; i++ {
		if d.Observe(40 + r.NormFloat64()*5) { // 4x cost shift
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("shift never detected")
	}
	if fired > 500 {
		t.Fatalf("detection too slow: %d observations", fired)
	}
	// Reset re-arms.
	d.Reset(40)
	for i := 0; i < 500; i++ {
		if d.Observe(40 + r.NormFloat64()*5) {
			t.Fatal("false alarm after reset to new baseline")
		}
	}
}

func TestEWMAValidation(t *testing.T) {
	if _, err := NewEWMA(0, 2, 0.1); err == nil {
		t.Fatal("zero baseline accepted")
	}
	if _, err := NewEWMA(1, 1, 0.1); err == nil {
		t.Fatal("threshold 1 accepted")
	}
	if _, err := NewEWMA(1, 2, 3); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
}

func TestPageHinkleyDetectsSustainedShiftIgnoresSpikes(t *testing.T) {
	d, err := NewPageHinkley(2, 200)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		cost := 10 + r.NormFloat64()*2
		if i%500 == 499 {
			cost = 200 // isolated spike must not trigger
		}
		if d.Observe(cost) {
			t.Fatalf("false alarm at %d (excess %g)", i, d.Excess())
		}
	}
	fired := -1
	for i := 0; i < 3000; i++ {
		if d.Observe(25 + r.NormFloat64()*2) { // sustained 2.5x shift
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("sustained shift never detected")
	}
	d.Reset()
	if d.Excess() != 0 {
		t.Fatal("reset did not clear excess")
	}
	if _, err := NewPageHinkley(-1, 10); err == nil {
		t.Fatal("negative delta accepted")
	}
	if _, err := NewPageHinkley(1, 0); err == nil {
		t.Fatal("zero lambda accepted")
	}
}

// TestRetrainLoopWithLearnedIndex is the §6.3 end-to-end scenario: a
// FITing-tree serves lookups while inserts shift the key distribution; the
// detector watches the per-segment model quality proxy (buffered fraction)
// and triggers a rebuild, restoring the cost.
func TestRetrainLoopWithLearnedIndex(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Uniform, 30000, 4)
	ix, err := fiting.Build(dataset.KV(keys), 64, 1<<20 /* huge buffers: no auto-merge */)
	if err != nil {
		t.Fatal(err)
	}
	costOf := func() float64 {
		// Proxy for lookup cost: buffered records per segment (the delta
		// the model cannot predict into).
		st := ix.Stats()
		buffered := st.Count - 30000 // records beyond the trained base
		if buffered < 0 {
			buffered = 0
		}
		return 1 + float64(buffered)/float64(st.Models)
	}
	det, err := NewEWMA(costOf(), 3.0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a shifted distribution; detector should eventually fire.
	shift, _ := dataset.Keys(dataset.Clustered, 60000, 5)
	fired := false
	for i, k := range shift {
		ix.Insert(k, 1)
		if det.Observe(costOf()) {
			fired = true
			// Retrain: rebuild the index over the merged contents.
			var recs []core.KV
			ix.Range(0, ^core.Key(0), func(k core.Key, v core.Value) bool {
				recs = append(recs, core.KV{Key: k, Value: v})
				return true
			})
			ix, err = fiting.Build(recs, 64, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			det.Reset(costOf())
			t.Logf("retrained after %d inserts", i+1)
			break
		}
	}
	if !fired {
		t.Fatal("drift never detected during distribution shift")
	}
	// After retraining, the detector stays quiet under the new stationary
	// distribution for a while.
	for i := 0; i < 1000; i++ {
		if det.Observe(costOf()) {
			t.Fatal("false alarm immediately after retrain")
		}
	}
}
