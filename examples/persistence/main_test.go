package main

import "testing"

// TestPersistenceExample runs the write → crash → reopen → verify cycle
// end to end, so the example doubles as a regression test (and is what
// the CI persistence job executes under -race).
func TestPersistenceExample(t *testing.T) {
	if err := run(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}
