// Persistence: the durable storage layer. Every mutation is written
// ahead to a segmented log before the in-memory learned index applies
// it; checkpoints atomically rotate a full snapshot plus fresh log; a
// crash (here: closing without flushing) loses nothing that was synced.
//
// The example writes through a checkpoint, keeps writing, "crashes",
// reopens the directory, and verifies the recovered index holds exactly
// the committed records.
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"os"

	lix "github.com/lix-go/lix"
)

func main() {
	dir, err := os.MkdirTemp("", "lix-persistence-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	if err := run(dir); err != nil {
		panic(err)
	}
}

func run(dir string) error {
	// Seed a sharded durable index. FsyncAlways means every Put returns
	// only after its log entry is on disk (group commit shares fsyncs
	// between concurrent writers), so a crash can lose nothing.
	seed := make([]lix.KV, 1000)
	for i := range seed {
		seed[i] = lix.KV{Key: lix.Key(i * 10), Value: lix.Value(i)}
	}
	d, err := lix.NewDurable(dir, seed, lix.DurableOptions{
		Shards: 4,
		Fsync:  lix.FsyncAlways,
	})
	if err != nil {
		return err
	}

	expect := make(map[lix.Key]lix.Value, len(seed)+200)
	for _, r := range seed {
		expect[r.Key] = r.Value
	}

	// First wave of writes, then a checkpoint: the snapshot now holds
	// everything so far and the logs restart empty.
	for i := 0; i < 100; i++ {
		k, v := lix.Key(1_000_000+i), lix.Value(i)
		if err := d.Put(k, v); err != nil {
			return err
		}
		expect[k] = v
	}
	if err := d.Checkpoint(); err != nil {
		return err
	}
	fmt.Printf("checkpointed at generation %d\n", d.Gen())

	// Second wave lands only in the write-ahead log — no checkpoint will
	// cover it before the crash. A delete rides along.
	for i := 0; i < 100; i++ {
		k, v := lix.Key(2_000_000+i), lix.Value(i)
		if err := d.Put(k, v); err != nil {
			return err
		}
		expect[k] = v
	}
	if _, err := d.Del(lix.Key(0)); err != nil {
		return err
	}
	delete(expect, lix.Key(0))

	// Crash: drop the process state without flushing or checkpointing.
	// Only what already reached disk survives — under FsyncAlways, that
	// is every acknowledged write.
	if err := d.Crash(); err != nil {
		return err
	}
	fmt.Println("crashed without a checkpoint")

	// Reopen with zero options: the kind and shard count are read back
	// from the snapshot, the log suffix replays over it, and the torn or
	// unsynced tail (none here) would be truncated, not fatal.
	r, err := lix.Open(dir, lix.DurableOptions{})
	if err != nil {
		return err
	}
	defer r.Close()
	info := r.RecoveryInfo()
	fmt.Printf("recovered: snapshot gen %d (%d records) + %d log records in %v\n",
		info.SnapshotGen, info.SnapshotRecs, info.WALRecs, info.Elapsed)

	if r.Len() != len(expect) {
		return fmt.Errorf("recovered %d records, want %d", r.Len(), len(expect))
	}
	for k, v := range expect {
		got, ok := r.Get(k)
		if !ok || got != v {
			return fmt.Errorf("key %d: got (%d,%v), want (%d,true)", k, got, ok, v)
		}
	}
	if _, ok := r.Get(lix.Key(0)); ok {
		return fmt.Errorf("deleted key 0 came back after recovery")
	}
	fmt.Printf("verified all %d records survived the crash\n", len(expect))
	return nil
}
