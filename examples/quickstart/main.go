// Quickstart: build learned one-dimensional indexes over a sorted key set,
// look keys up, and compare their size/latency profile against a B+-tree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	lix "github.com/lix-go/lix"
)

func main() {
	// A sorted key set with a non-uniform distribution (quadratic CDF) —
	// exactly what learned indexes exploit.
	const n = 1 << 20
	recs := make([]lix.KV, n)
	for i := range recs {
		k := lix.Key(i) * lix.Key(i) / 64
		recs[i] = lix.KV{Key: k, Value: lix.Value(i)}
	}
	for i := 1; i < n; i++ { // keep keys strictly increasing
		if recs[i].Key <= recs[i-1].Key {
			recs[i].Key = recs[i-1].Key + 1
		}
	}

	// Build one index from each family.
	rmi, err := lix.NewRMI(recs, lix.RMIConfig{})
	check(err)
	pgm, err := lix.NewPGM(recs, 64)
	check(err)
	btree, err := lix.BulkBTree(0, recs)
	check(err)
	binary := lix.NewSortedArray(recs)

	fmt.Println("Index profiles after indexing", n, "records:")
	for _, ix := range []lix.Index{binary, btree, rmi, pgm} {
		st := ix.Stats()
		fmt.Printf("  %-14s index=%7.1f KiB  models=%d\n",
			st.Name, float64(st.IndexBytes)/1024, st.Models)
	}

	// Point lookups.
	fmt.Println("\nLookups:")
	probe := recs[n/3].Key
	for _, ix := range []lix.Index{binary, btree, rmi, pgm} {
		start := time.Now()
		var v lix.Value
		var ok bool
		for i := 0; i < 100000; i++ {
			v, ok = ix.Get(probe)
		}
		fmt.Printf("  %-14s Get(%d) = %d,%v   (%.0f ns/op)\n",
			ix.Stats().Name, probe, v, ok, float64(time.Since(start).Nanoseconds())/100000)
	}

	// Range scan.
	fmt.Println("\nRange scan over the learned index:")
	count := rmi.Range(recs[100].Key, recs[120].Key, func(k lix.Key, v lix.Value) bool {
		return true
	})
	fmt.Printf("  %d records in [%d, %d]\n", count, recs[100].Key, recs[120].Key)

	// Updatable learned index.
	fmt.Println("\nUpdatable learned index (ALEX):")
	alex := lix.NewALEX()
	for i := 0; i < 100000; i++ {
		alex.Insert(lix.Key(i*7), lix.Value(i))
	}
	alex.Delete(lix.Key(7))
	v, ok := alex.Get(lix.Key(14))
	fmt.Printf("  after 100k inserts + delete: Get(14) = %d,%v, Len = %d\n", v, ok, alex.Len())

	// The serving stack: one call composes backend → shards → metrics,
	// with batched operations dispatched to each layer's native batch
	// path (one shard lock per batch instead of one per record).
	fmt.Println("\nServing stack (lix.NewStack):")
	m := lix.NewMetrics("quickstart")
	s, err := lix.NewStack(recs, lix.StackConfig{Kind: "btree", Shards: 8, Metrics: m})
	check(err)
	defer s.Close()
	keys := make([]lix.Key, 1000)
	for i := range keys {
		keys[i] = recs[i*3].Key
	}
	_, hits := s.LookupBatch(keys)
	found := 0
	for _, ok := range hits {
		if ok {
			found++
		}
	}
	span := s.SearchRange(recs[100].Key, recs[200].Key)
	snap := m.Snapshot()
	fmt.Printf("  LookupBatch(%d keys): %d hits; SearchRange: %d records\n",
		len(keys), found, len(span))
	fmt.Printf("  metered: %d lookups in %d batches, %d range scans\n",
		snap.Counters["lookups"], snap.Counters["batches"], snap.Counters["ranges"])
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
