// Dynamic: compare the two insert strategies of updatable learned indexes
// — in-place (ALEX, LIPP) vs delta-buffer (dynamic PGM, FITing-tree) —
// under insert-only, read-mostly and write-heavy workloads, against a
// B+-tree baseline.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"math/rand"
	"time"

	lix "github.com/lix-go/lix"
)

const n = 500000

func main() {
	r := rand.New(rand.NewSource(2))
	keys := make([]lix.Key, n)
	cur := lix.Key(0)
	for i := range keys {
		cur += lix.Key(r.Intn(1000) + 1)
		keys[i] = cur
	}
	perm := r.Perm(n)

	fmt.Printf("%-12s  %12s  %14s  %14s\n", "index", "insert Mops", "95/5 mix Mops", "50/50 mix Mops")
	for _, kind := range lix.Mutable1DKinds() {
		insert := measure(func(ix lix.MutableIndex) {
			for _, i := range perm {
				ix.Insert(keys[i], lix.Value(i))
			}
		}, kind, n)

		mix := func(readFrac float64) float64 {
			ix, err := lix.BuildMutable1D(kind)
			if err != nil {
				panic(err)
			}
			for _, i := range perm[:n/2] {
				ix.Insert(keys[i], lix.Value(i))
			}
			rr := rand.New(rand.NewSource(3))
			next := n / 2
			const ops = 200000
			start := time.Now()
			for o := 0; o < ops; o++ {
				if rr.Float64() < readFrac {
					ix.Get(keys[rr.Intn(n)])
				} else {
					i := perm[next%n]
					next++
					ix.Insert(keys[i], lix.Value(i))
				}
			}
			return float64(ops) / float64(time.Since(start).Nanoseconds()) * 1000
		}

		fmt.Printf("%-12s  %12.2f  %14.2f  %14.2f\n", kind, insert, mix(0.95), mix(0.50))
	}
}

// measure returns Mops/s for fn over n operations on a fresh index.
func measure(fn func(lix.MutableIndex), kind string, ops int) float64 {
	ix, err := lix.BuildMutable1D(kind)
	if err != nil {
		panic(err)
	}
	start := time.Now()
	fn(ix)
	return float64(ops) / float64(time.Since(start).Nanoseconds()) * 1000
}
