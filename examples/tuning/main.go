// Tuning: Flood's learned layout. Generate correlated data and a skewed
// workload, let Flood's cost model pick the grid layout, and compare the
// tuned layout against naive fixed layouts and a workload-driven Qd-tree.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	lix "github.com/lix-go/lix"
)

func main() {
	// Correlated 2-D data (points near the diagonal) and thin queries:
	// the worst case for a uniform grid, the motivating case for Flood.
	const n = 300000
	r := rand.New(rand.NewSource(8))
	pvs := make([]lix.PV, n)
	for i := range pvs {
		base := r.Float64() * (1 << 20)
		pvs[i] = lix.PV{Point: lix.Point{
			clamp(base + r.NormFloat64()*12000),
			clamp(base + r.NormFloat64()*12000),
		}, Value: lix.Value(i)}
	}
	queries := make([]lix.Rect, 200)
	for i := range queries {
		c := pvs[r.Intn(n)].Point
		queries[i] = mustRect(
			lix.Point{clamp(c[0] - 40000), clamp(c[1] - 2000)},
			lix.Point{clamp(c[0] + 40000), clamp(c[1] + 2000)},
		)
	}
	train, test := queries[:100], queries[100:]

	tuned, res, err := lix.NewFloodTuned(pvs, train, 0)
	check(err)
	fmt.Printf("Flood tuner evaluated %d layouts; chose cols=%v sortDim=%d (cost %.0f)\n\n",
		res.Evaluated, res.Cols, res.SortDim, res.Cost)

	naive0, err := lix.NewFlood(pvs, lix.FloodConfig{SortDim: 0, Cols: []int{1, 64}})
	check(err)
	naive1, err := lix.NewFlood(pvs, lix.FloodConfig{SortDim: 1, Cols: []int{64, 1}})
	check(err)
	qd, err := lix.NewQdTree(pvs, train, lix.QdTreeConfig{})
	check(err)

	fmt.Printf("%-22s %12s %10s\n", "layout", "us/query", "avg work")
	for _, e := range []struct {
		name string
		ix   lix.SpatialIndex
	}{
		{"flood (tuned)", tuned},
		{"flood (64 cols dim0)", naive1},
		{"flood (64 cols dim1)", naive0},
		{"qd-tree (greedy)", qd},
	} {
		var work, count int
		start := time.Now()
		for _, q := range test {
			v, w := e.ix.Search(q, func(lix.PV) bool { return true })
			count += v
			work += w
		}
		us := float64(time.Since(start).Microseconds()) / float64(len(test))
		fmt.Printf("%-22s %12.1f %10d   (%d results)\n", e.name, us, work/len(test), count)
	}
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1<<20 {
		return 1<<20 - 1
	}
	return v
}

func mustRect(min, max lix.Point) lix.Rect {
	r, err := lix.NewRect(min, max)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
