// Filters: learned Bloom filters vs a standard Bloom filter on a
// structured key set, sweeping the space budget (paper §6.6, index
// compression). All filters guarantee zero false negatives; the learned
// variants trade classifier bits for backup-filter bits.
//
//	go run ./examples/filters
package main

import (
	"fmt"
	"log"
	"math/rand"

	lix "github.com/lix-go/lix"
)

func main() {
	// Keys concentrate in one band of the key space: a URL-blocklist-like
	// set a tiny classifier can mostly separate from random probes.
	const n = 100000
	r := rand.New(rand.NewSource(4))
	seen := map[lix.Key]bool{}
	keys := make([]lix.Key, 0, n)
	for len(keys) < n {
		k := lix.Key(1<<50 + r.Int63n(1<<38))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sampleNeg := func(m int, seed int64) []lix.Key {
		rr := rand.New(rand.NewSource(seed))
		out := make([]lix.Key, 0, m)
		for len(out) < m {
			var k lix.Key
			if rr.Intn(2) == 0 {
				k = lix.Key(rr.Int63n(1 << 50))
			} else {
				k = lix.Key(1<<51 + rr.Int63n(1<<55))
			}
			if !seen[k] {
				out = append(out, k)
			}
		}
		return out
	}
	trainNeg := sampleNeg(n, 5)
	testNeg := sampleNeg(n, 6)

	fmt.Printf("%-12s", "bits/key")
	for _, b := range []int{6, 8, 10, 14} {
		fmt.Printf("  %8d", b)
	}
	fmt.Println()
	rows := []struct {
		name  string
		build func(bits uint64) lix.MembershipFilter
	}{
		{"bloom", func(bits uint64) lix.MembershipFilter {
			f := lix.NewBloomFilterBits(bits, n)
			for _, k := range keys {
				f.Add(k)
			}
			return f
		}},
		{"learned", func(bits uint64) lix.MembershipFilter {
			f, err := lix.TrainLearnedBF(keys, trainNeg, bits)
			check(err)
			return f
		}},
		{"sandwiched", func(bits uint64) lix.MembershipFilter {
			f, err := lix.TrainSandwichedBF(keys, trainNeg, bits)
			check(err)
			return f
		}},
		{"partitioned", func(bits uint64) lix.MembershipFilter {
			f, err := lix.TrainPartitionedBF(keys, trainNeg, bits, 0)
			check(err)
			return f
		}},
	}
	for _, row := range rows {
		fmt.Printf("%-12s", row.name)
		for _, bpk := range []int{6, 8, 10, 14} {
			f := row.build(uint64(bpk * n))
			// Verify the no-false-negative guarantee on a sample.
			for i := 0; i < n; i += 97 {
				if !f.Contains(keys[i]) {
					log.Fatalf("%s: false negative!", row.name)
				}
			}
			fmt.Printf("  %8.4f", lix.MeasureFPR(f, testNeg))
		}
		fmt.Println()
	}
	fmt.Println("\n(values are observed false-positive rates; lower is better)")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
