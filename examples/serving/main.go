// Serving: the pipelined TCP front-end over a sharded stack. An
// in-process server is started on an ephemeral port, a wire client talks
// to it, and the payoff of pipelining is shown directly: a pipelined
// burst of writes dispatches as ONE batch into the stack (one shard
// fan-out, and under -fsync=always one WAL group commit), where the same
// writes issued one at a time pay one round-trip and one dispatch each.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"time"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/wire"
)

const n = 1 << 17

func main() {
	recs := make([]lix.KV, n)
	for i := range recs {
		recs[i] = lix.KV{Key: lix.Key(i * 3), Value: lix.Value(i)}
	}
	m := lix.NewMetrics("serving-example")
	stack, err := lix.NewStack(recs, lix.StackConfig{Kind: "pgm-dynamic", Shards: 4, Metrics: m})
	if err != nil {
		panic(err)
	}
	srv := lix.NewServer(stack, lix.ServeConfig{Metrics: m, CloseStore: true})
	if err := srv.Start(); err != nil {
		panic(err)
	}
	defer srv.Shutdown()
	fmt.Printf("serving %d records on %s\n\n", stack.Len(), srv.Addr())

	c, err := wire.DialTimeout(srv.Addr().String(), 5*time.Second)
	if err != nil {
		panic(err)
	}
	defer c.Close()

	// Point ops over the wire.
	v, ok, _ := c.Get(300)
	fmt.Printf("GET 300        -> (%d, %v)\n", v, ok)
	_ = c.Set(301, 9001)
	v, ok, _ = c.Get(301)
	fmt.Printf("SET+GET 301    -> (%d, %v)\n", v, ok)
	hits, _, _ := c.MGet([]core.Key{0, 1, 2, 3, 4, 5})
	fmt.Printf("MGET 6 keys    -> %d values\n", len(hits))
	span, _ := c.Scan(0, 60, 0)
	fmt.Printf("SCAN [0,60]    -> %d records\n\n", len(span))

	// Pipelining: the same 512 writes, one at a time vs one burst.
	const burst = 512
	start := time.Now()
	for i := 0; i < burst; i++ {
		if err := c.Set(lix.Key(1_000_000+i), lix.Value(i)); err != nil {
			panic(err)
		}
	}
	oneAtATime := time.Since(start)

	reqs := make([]wire.Msg, burst)
	for i := range reqs {
		reqs[i] = wire.Msg{Op: wire.OpSet, Key: lix.Key(2_000_000 + i), Val: lix.Value(i)}
	}
	start = time.Now()
	if _, err := c.Pipeline(reqs, nil); err != nil {
		panic(err)
	}
	pipelined := time.Since(start)

	fmt.Printf("%d writes, one round-trip each: %8s\n", burst, oneAtATime.Round(time.Microsecond))
	fmt.Printf("%d writes, one pipelined burst: %8s  (%.1fx)\n\n",
		burst, pipelined.Round(time.Microsecond), float64(oneAtATime)/float64(pipelined))

	// The server-side evidence: pipelined requests arrive in few groups.
	snap := m.Snapshot()
	fmt.Printf("server saw %d requests in %d groups (mean group %.0f frames)\n",
		snap.Counters["requests"], snap.Counters["groups"],
		float64(snap.Counters["requests"])/float64(snap.Counters["groups"]))
	fmt.Printf("insert p99 %s, get p99 %s\n",
		time.Duration(snap.Histograms["insert_ns"].P99),
		time.Duration(snap.Histograms["get_ns"].P99))
}
