// Command observability demonstrates the lix metrics and event-hook layer:
// wrapping an index so every operation records latency and cardinality
// histograms, routing the shared last-mile search instrumentation (probe
// counts, error-window widths) into the same bundle, watching structural
// events (splits, flushes, retrains), closing the drift->retrain loop with
// a detector fed by the live correction-cost stream, and rendering
// everything as a snapshot and as Prometheus text.
package main

import (
	"fmt"
	"os"

	"github.com/lix-go/lix"
)

func main() {
	// --- 1. Observe a static index -------------------------------------
	recs := make([]lix.KV, 200_000)
	for i := range recs {
		recs[i] = lix.KV{Key: lix.Key(i * 13), Value: lix.Value(i)}
	}
	pgm, err := lix.NewPGM(recs, 0)
	if err != nil {
		panic(err)
	}
	m := lix.NewMetrics("pgm")
	idx := lix.Observe(pgm, m)

	// Route probe counts and error-window widths from the shared bounded
	// search helpers into the same bundle.
	lix.EnableSearchMetrics(m)
	defer lix.DisableSearchMetrics()

	for i := 0; i < 50_000; i++ {
		idx.Get(lix.Key((i * 31) % (13 * len(recs))))
	}
	idx.Range(1300, 2600, func(lix.Key, lix.Value) bool { return true })

	s := m.Snapshot()
	fmt.Printf("lookups=%d hits=%d\n", s.Counters["lookups"], s.Counters["hits"])
	fmt.Printf("get latency  p50=%dns p99=%dns\n",
		s.Histograms["get_ns"].P50, s.Histograms["get_ns"].P99)
	fmt.Printf("search cost  probes p50=%d  window p90=%d\n",
		s.Histograms["search_probes"].P50, s.Histograms["search_window"].P90)

	// --- 2. Structural events from a mutable index ---------------------
	am := lix.NewMetrics("alex")
	alex := lix.ObserveMutable(lix.NewALEX(), am)
	for i := 0; i < 100_000; i++ {
		alex.Insert(lix.Key((i*2654435761)%1_000_000), lix.Value(i))
	}
	fmt.Printf("alex splits/expands=%d retrains=%d (insert p99=%dns)\n",
		am.Events.Count(lix.EvNodeSplit), am.Events.Count(lix.EvRetrain),
		am.Snapshot().Histograms["insert_ns"].P99)
	for _, e := range am.Events.Recent(3) {
		fmt.Println("  recent event:", e)
	}

	// --- 3. Drift -> retrain closed loop -------------------------------
	// A detector consumes the live error-window stream; when the workload
	// shifts and windows widen, it trips and we rebuild the index.
	dm := lix.NewMetrics("drifting")
	det, err := lix.NewDriftEWMA(4.0, 4.0, 0.05)
	if err != nil {
		panic(err)
	}
	retrains := 0
	dm.SetDriftDetector(det, func() { retrains++ })

	// A coarse index (wide epsilon) stands in for a model gone stale:
	// its error windows are far wider than the detector's baseline.
	stale, err := lix.NewPGM(recs, 256)
	if err != nil {
		panic(err)
	}
	widx := lix.Observe(stale, dm)
	lix.EnableSearchMetrics(dm)
	for i := 0; i < 2_000 && !dm.DriftTripped(); i++ {
		widx.Get(recs[i%len(recs)].Key)
	}
	if dm.DriftTripped() {
		// The retrain: rebuild with a tight epsilon, re-arm the detector.
		fresh, err := lix.NewPGM(recs, 16)
		if err != nil {
			panic(err)
		}
		widx = lix.Observe(fresh, dm)
		det.Reset(4.0)
		dm.ReArmDrift()
	}
	widx.Get(recs[0].Key)
	lix.DisableSearchMetrics()
	fmt.Printf("drift trips=%d retrains=%d\n", dm.Events.Count(lix.EvDriftTrip), retrains)

	// --- 4. Prometheus text exposition ---------------------------------
	fmt.Println("--- prometheus (excerpt) ---")
	if err := lix.WriteMetricsPrometheus(os.Stdout, m); err != nil {
		panic(err)
	}
}
