// Spatial: index two-dimensional points with learned multi-dimensional
// indexes (ZM-index, ML-Index, LISA) and a traditional R-tree, then run
// point, range, and kNN queries on all of them.
//
//	go run ./examples/spatial
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	lix "github.com/lix-go/lix"
)

func main() {
	// Synthetic "city" data: clusters of points, like OSM extracts.
	const n = 200000
	r := rand.New(rand.NewSource(1))
	pvs := make([]lix.PV, n)
	for i := range pvs {
		cx := float64(r.Intn(8))*120000 + 30000
		cy := float64(r.Intn(8))*120000 + 30000
		pvs[i] = lix.PV{
			Point: lix.Point{clamp(cx + r.NormFloat64()*8000), clamp(cy + r.NormFloat64()*8000)},
			Value: lix.Value(i),
		}
	}

	zmIx, err := lix.NewZMIndex(pvs, lix.ZMConfig{})
	check(err)
	hilbert, err := lix.NewZMIndex(pvs, lix.ZMConfig{Curve: lix.CurveHilbert})
	check(err)
	ml, err := lix.NewMLIndex(pvs, lix.MLIndexConfig{Refs: 16})
	check(err)
	lisaIx, err := lix.NewLISA(pvs, lix.LISAConfig{})
	check(err)
	rt, err := lix.BulkRTree(0, pvs)
	check(err)

	indexes := []struct {
		name string
		ix   lix.KNNIndex
	}{
		{"zm (z-order)", zmIx}, {"zm (hilbert)", hilbert},
		{"ml-index", ml}, {"lisa", lisaIx}, {"rtree", rt},
	}

	// Range query: a city-sized window.
	window, err := lix.NewRect(lix.Point{140000, 140000}, lix.Point{160000, 160000})
	check(err)
	fmt.Println("Range query over a 20k x 20k window:")
	for _, e := range indexes {
		start := time.Now()
		count, work := e.ix.Search(window, func(lix.PV) bool { return true })
		fmt.Printf("  %-13s %6d points  (work=%d, %v)\n", e.name, count, work, time.Since(start).Round(time.Microsecond))
	}

	// kNN query.
	q := lix.Point{150000, 150000}
	fmt.Println("\n10 nearest neighbors of", q, ":")
	for _, e := range indexes {
		start := time.Now()
		nn := e.ix.KNN(q, 10)
		fmt.Printf("  %-13s nearest dist=%.1f  (%v)\n", e.name, q.Dist(nn[0].Point), time.Since(start).Round(time.Microsecond))
	}

	// Exact-point lookup.
	fmt.Println("\nExact-point lookups:")
	for _, e := range indexes {
		v, ok := e.ix.Lookup(pvs[12345].Point)
		fmt.Printf("  %-13s Lookup -> value=%d ok=%v\n", e.name, v, ok)
	}

	// LISA supports inserts (delta buffers + shard splits).
	fmt.Println("\nInserting 50k new points into LISA...")
	for i := 0; i < 50000; i++ {
		p := lix.Point{clamp(r.Float64() * (1 << 20)), clamp(r.Float64() * (1 << 20))}
		check(lisaIx.Insert(p, lix.Value(n+i)))
	}
	fmt.Println("  LISA now holds", lisaIx.Len(), "points")
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1<<20 {
		return 1<<20 - 1
	}
	return v
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
