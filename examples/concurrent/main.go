// Concurrent: the XIndex-style concurrent learned index and the sharded
// serving layer under parallel readers and writers, scaling across
// goroutines, vs a B+-tree behind one RWMutex (paper §6.5: concurrency as
// a first-class concern).
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	lix "github.com/lix-go/lix"
)

const (
	n   = 1 << 20
	ops = 200000
)

func main() {
	recs := make([]lix.KV, n)
	cur := lix.Key(0)
	r := rand.New(rand.NewSource(9))
	for i := range recs {
		cur += lix.Key(r.Intn(100) + 1)
		recs[i] = lix.KV{Key: cur, Value: lix.Value(i)}
	}
	x, err := lix.BulkXIndex(recs, 0, 0)
	if err != nil {
		panic(err)
	}
	bt, err := lix.BulkBTree(0, recs)
	if err != nil {
		panic(err)
	}
	var mu sync.RWMutex
	// Both sharded modes assembled through the canonical stack constructor.
	srw, err := lix.NewStack(recs, lix.StackConfig{Shards: 8})
	if err != nil {
		panic(err)
	}
	srcu, err := lix.NewStack(recs, lix.StackConfig{Shards: 8, Mode: lix.ShardRCU, DeltaCap: 8192})
	if err != nil {
		panic(err)
	}

	fmt.Printf("95%% reads / 5%% writes, %d ops per goroutine\n\n", ops)
	fmt.Printf("%-16s", "goroutines")
	gs := []int{1, 2, 4, runtime.NumCPU()}
	for _, g := range gs {
		fmt.Printf("  %8d", g)
	}
	fmt.Println()

	fmt.Printf("%-16s", "xindex Mops")
	for _, g := range gs {
		fmt.Printf("  %8.2f", run(g, recs,
			func(k lix.Key) { x.Get(k) },
			func(k lix.Key, v lix.Value) { x.Insert(k, v) }))
	}
	fmt.Println()

	fmt.Printf("%-16s", "sharded-rw Mops")
	for _, g := range gs {
		fmt.Printf("  %8.2f", run(g, recs,
			func(k lix.Key) { srw.Get(k) },
			func(k lix.Key, v lix.Value) { srw.Insert(k, v) }))
	}
	fmt.Println()

	fmt.Printf("%-16s", "sharded-rcu Mops")
	for _, g := range gs {
		fmt.Printf("  %8.2f", run(g, recs,
			func(k lix.Key) { srcu.Get(k) },
			func(k lix.Key, v lix.Value) { srcu.Insert(k, v) }))
	}
	fmt.Println()

	fmt.Printf("%-16s", "btree+lock Mops")
	for _, g := range gs {
		fmt.Printf("  %8.2f", run(g, recs,
			func(k lix.Key) { mu.RLock(); bt.Get(k); mu.RUnlock() },
			func(k lix.Key, v lix.Value) { mu.Lock(); bt.Insert(k, v); mu.Unlock() }))
	}
	fmt.Println()

	// The batched APIs group keys by shard and take each shard lock once
	// per batch instead of once per key.
	batch := make([]lix.Key, 1024)
	r = rand.New(rand.NewSource(11))
	for i := range batch {
		batch[i] = recs[r.Intn(len(recs))].Key
	}
	start := time.Now()
	vals, hits := srw.LookupBatch(batch)
	fmt.Printf("\nLookupBatch: %d keys in %v (%d hits, %d values)\n",
		len(batch), time.Since(start), countTrue(hits), len(vals))

	// Layer-specific stats live on the layer: Stack.Sharded exposes it.
	fmt.Printf("sharded-rw imbalance %.2fx, sharded-rcu swaps %d\n",
		srw.Sharded().Imbalance(), srcu.Sharded().RCUSwaps())
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// seedSeq gives every worker goroutine across the whole program a fresh
// seed. Reusing seeds between table columns would replay identical write
// key sets, which the RCU delta dedups — hiding the snapshot swaps this
// example is meant to show.
var seedSeq int64

func run(workers int, recs []lix.KV, get func(lix.Key), put func(lix.Key, lix.Value)) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(atomic.AddInt64(&seedSeq, 1) * 7919))
			for o := 0; o < ops; o++ {
				k := recs[r.Intn(len(recs))].Key
				if r.Float64() < 0.95 {
					get(k)
				} else {
					put(k, lix.Value(o))
				}
			}
		}(w)
	}
	wg.Wait()
	return float64(ops*workers) / float64(time.Since(start).Nanoseconds()) * 1000
}
