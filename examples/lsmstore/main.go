// LSM store: the BOURBON-style learned LSM-tree as a small key-value
// store — writes through a memtable, flushes into learned-indexed runs,
// leveled compaction, range scans over the merged view, and the model
// footprint that replaces block indexes.
//
//	go run ./examples/lsmstore
package main

import (
	"fmt"
	"math/rand"
	"time"

	lix "github.com/lix-go/lix"
)

func main() {
	db := lix.NewLearnedLSM(lix.LSMConfig{MemtableCap: 8192})

	// Write a timestamp-like workload: mostly increasing keys with updates.
	const n = 300000
	r := rand.New(rand.NewSource(1))
	start := time.Now()
	cur := lix.Key(1 << 30)
	keys := make([]lix.Key, 0, n)
	for i := 0; i < n; i++ {
		cur += lix.Key(r.Intn(1000) + 1)
		keys = append(keys, cur)
		db.Insert(cur, lix.Value(i))
		if i%10 == 3 { // occasional update of a recent key
			db.Insert(keys[r.Intn(len(keys))], lix.Value(i))
		}
	}
	fmt.Printf("loaded %d records in %v (%d live)\n", n, time.Since(start).Round(time.Millisecond), db.Len())

	// Point reads.
	start = time.Now()
	hits := 0
	for i := 0; i < 100000; i++ {
		if _, ok := db.Get(keys[r.Intn(len(keys))]); ok {
			hits++
		}
	}
	fmt.Printf("100k random gets: %v (%d hits)\n", time.Since(start).Round(time.Millisecond), hits)

	// Deletes and a range scan over the merged view.
	for i := 0; i < 1000; i++ {
		db.Delete(keys[i])
	}
	count := db.Range(keys[0], keys[5000], func(k lix.Key, v lix.Value) bool { return true })
	fmt.Printf("range over first 5k keys after 1k deletes: %d live records\n", count)

	st := db.Stats()
	fmt.Printf("\nstructure: %d levels, %d learned segments, %.1f KiB of models for %.1f MiB of data\n",
		st.Height, st.Models, float64(st.IndexBytes)/1024, float64(st.DataBytes)/(1<<20))
	fmt.Println("(the models replace the block indexes a traditional LSM keeps per run)")
}
