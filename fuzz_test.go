package lix_test

import (
	"sort"
	"testing"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/segment"
	"github.com/lix-go/lix/internal/sfc"
)

// FuzzLearnedLowerBound feeds arbitrary byte strings decoded as key sets
// and probes into the learned 1-D indexes and cross-checks LowerBound-
// dependent behavior (Get and Range) against the sorted-array reference.
//
// Run with: go test -fuzz=FuzzLearnedLowerBound -fuzztime=30s .
func FuzzLearnedLowerBound(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint64(5))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 0, 0}, uint64(1)<<63)
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, raw []byte, probe uint64) {
		// Decode raw into a key set (8 bytes per key, little-endian-ish).
		var keys []lix.Key
		for i := 0; i+8 <= len(raw) && len(keys) < 512; i += 8 {
			var k uint64
			for j := 0; j < 8; j++ {
				k = k<<8 | uint64(raw[i+j])
			}
			keys = append(keys, lix.Key(k))
		}
		if len(keys) == 0 {
			return
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		// Dedup (map semantics).
		recs := make([]lix.KV, 0, len(keys))
		for i, k := range keys {
			if i > 0 && keys[i-1] == k {
				continue
			}
			recs = append(recs, lix.KV{Key: k, Value: lix.Value(i)})
		}
		ref := lix.NewSortedArray(recs)
		for _, kind := range []string{"rmi", "pgm", "radixspline", "histtree"} {
			ix, err := lix.Build1D(kind, recs)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			v1, ok1 := ix.Get(lix.Key(probe))
			v2, ok2 := ref.Get(lix.Key(probe))
			if ok1 != ok2 || (ok1 && v1 != v2) {
				t.Fatalf("%s: Get(%d) = %d,%v, ref %d,%v", kind, probe, v1, ok1, v2, ok2)
			}
			// Range around the probe.
			lo, hi := lix.Key(probe), lix.Key(probe)+1024
			if hi < lo {
				hi = ^lix.Key(0)
			}
			n1 := ix.Range(lo, hi, func(lix.Key, lix.Value) bool { return true })
			n2 := ref.Range(lo, hi, func(lix.Key, lix.Value) bool { return true })
			if n1 != n2 {
				t.Fatalf("%s: Range(%d,%d) = %d, ref %d", kind, lo, hi, n1, n2)
			}
		}
	})
}

// FuzzPLAErrorBound checks the ε guarantee of both PLA builders on
// arbitrary monotone inputs.
//
// Run with: go test -fuzz=FuzzPLAErrorBound -fuzztime=30s .
func FuzzPLAErrorBound(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 201, 202}, uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, epsRaw uint8) {
		if len(raw) == 0 {
			return
		}
		eps := float64(epsRaw%64) + 1
		// Build a monotone key sequence from cumulative byte gaps.
		xs := make([]float64, 0, len(raw))
		cur := 0.0
		for _, b := range raw {
			cur += float64(b)
			xs = append(xs, cur)
		}
		distinct, firstPos := segment.Dedup(xs)
		for name, build := range map[string]func([]float64, []float64, float64) []segment.Segment{
			"anchored": segment.BuildAnchored,
			"optimal":  segment.BuildOptimal,
		} {
			segs := build(distinct, firstPos, eps)
			if len(segs) == 0 {
				t.Fatalf("%s: no segments", name)
			}
			if segs[0].StartIdx != 0 || segs[len(segs)-1].EndIdx != len(distinct) {
				t.Fatalf("%s: does not tile input", name)
			}
			if e := segment.MaxError(distinct, firstPos, segs); e > eps+1e-6 {
				t.Fatalf("%s: error %g > eps %g", name, e, eps)
			}
		}
	})
}

// FuzzExponentialSearch cross-checks ExponentialSearch against LowerBound
// from arbitrary start positions.
func FuzzExponentialSearch(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, uint64(2), 1)
	f.Fuzz(func(t *testing.T, raw []byte, probe uint64, start int) {
		keys := make([]core.Key, 0, len(raw))
		cur := core.Key(0)
		for _, b := range raw {
			cur += core.Key(b)
			keys = append(keys, cur)
		}
		want := core.LowerBound(keys, core.Key(probe))
		got := core.ExponentialSearch(keys, core.Key(probe), start)
		if got != want {
			t.Fatalf("ExponentialSearch(%d, start=%d) = %d, want %d", probe, start, got, want)
		}
	})
}

// FuzzSFCRangeDecompose feeds arbitrary rectangles through the Morton and
// Hilbert range decompositions and checks the covering contract both ways:
// every cell of the rectangle is covered by some interval, and walking the
// intervals and filtering decoded cells with ContainsCell reconstructs the
// rectangle's cell set exactly once (intervals must not overlap).
//
// Run with: go test -fuzz=FuzzSFCRangeDecompose -fuzztime=30s .
func FuzzSFCRangeDecompose(f *testing.F) {
	f.Add(uint8(4), uint8(1), uint8(2), uint8(10), uint8(12), uint8(8))
	f.Add(uint8(5), uint8(0), uint8(0), uint8(31), uint8(31), uint8(1))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), uint8(4))
	f.Fuzz(func(t *testing.T, bitsRaw, x0, y0, x1, y1, budgetRaw uint8) {
		bits := uint(bitsRaw)%5 + 1 // 2..32 cells per dim: intervals stay enumerable
		side := uint32(1) << bits
		min := []uint32{uint32(x0) % side, uint32(y0) % side}
		max := []uint32{uint32(x1) % side, uint32(y1) % side}
		for d := 0; d < 2; d++ {
			if min[d] > max[d] {
				min[d], max[d] = max[d], min[d]
			}
		}
		maxRanges := int(budgetRaw)%16 + 1

		morton, err := sfc.NewMorton(2, bits)
		if err != nil {
			t.Fatal(err)
		}
		hilbert, err := sfc.NewHilbert2D(bits)
		if err != nil {
			t.Fatal(err)
		}
		curves := map[string]struct {
			ranges  func() []sfc.Interval
			encode  func(x, y uint32) uint64
			decode  func(code uint64) (x, y uint32)
			maxCode uint64
		}{
			"morton": {
				ranges: func() []sfc.Interval { return morton.Ranges(min, max, maxRanges) },
				encode: func(x, y uint32) uint64 { return morton.Encode([]uint32{x, y}) },
				decode: func(code uint64) (x, y uint32) {
					c := morton.Decode(code)
					return c[0], c[1]
				},
				maxCode: morton.MaxCode(),
			},
			"hilbert": {
				ranges: func() []sfc.Interval {
					return hilbert.Ranges([2]uint32{min[0], min[1]}, [2]uint32{max[0], max[1]}, maxRanges)
				},
				encode:  hilbert.Encode,
				decode:  func(code uint64) (x, y uint32) { return hilbert.Decode(code) },
				maxCode: hilbert.MaxCode(),
			},
		}
		for name, c := range curves {
			ivs := c.ranges()
			if len(ivs) > maxRanges {
				t.Fatalf("%s: %d intervals exceed budget %d", name, len(ivs), maxRanges)
			}
			for i, iv := range ivs {
				if iv.Lo > iv.Hi || iv.Hi > c.maxCode {
					t.Fatalf("%s: malformed interval %d: [%d, %d]", name, i, iv.Lo, iv.Hi)
				}
				if i > 0 && iv.Lo <= ivs[i-1].Hi {
					t.Fatalf("%s: intervals %d and %d not disjoint ascending", name, i-1, i)
				}
			}
			// Direction 1: every rectangle cell's code lies in some interval.
			for x := min[0]; x <= max[0]; x++ {
				for y := min[1]; y <= max[1]; y++ {
					code := c.encode(x, y)
					found := false
					for _, iv := range ivs {
						if code >= iv.Lo && code <= iv.Hi {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%s: cell (%d,%d) code %d not covered", name, x, y, code)
					}
				}
			}
			// Direction 2: walking the intervals and filtering by
			// ContainsCell visits exactly the rectangle's cells, once each.
			want := int((max[0] - min[0] + 1) * (max[1] - min[1] + 1))
			got := 0
			for _, iv := range ivs {
				for code := iv.Lo; ; code++ {
					x, y := c.decode(code)
					if sfc.ContainsCell([]uint32{x, y}, min, max) {
						got++
					}
					if code == iv.Hi {
						break
					}
				}
			}
			if got != want {
				t.Fatalf("%s: interval walk yielded %d in-rect cells, want %d", name, got, want)
			}
		}
	})
}

// FuzzPLASegments checks the structural contract of both PLA builders on
// arbitrary monotone inputs: segments tile the input contiguously, their
// key ranges are consistent and ascending, Locate finds the covering
// segment for every distinct key, and the ε bound holds.
//
// Run with: go test -fuzz=FuzzPLASegments -fuzztime=30s .
func FuzzPLASegments(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 201, 202}, uint8(4))
	f.Add([]byte{0, 0, 0, 0}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, epsRaw uint8) {
		if len(raw) == 0 {
			return
		}
		eps := float64(epsRaw%64) + 1
		xs := make([]float64, 0, len(raw))
		cur := 0.0
		for _, b := range raw {
			cur += float64(b)
			xs = append(xs, cur)
		}
		distinct, firstPos := segment.Dedup(xs)
		for name, build := range map[string]func([]float64, []float64, float64) []segment.Segment{
			"anchored": segment.BuildAnchored,
			"optimal":  segment.BuildOptimal,
		} {
			segs := build(distinct, firstPos, eps)
			if len(segs) == 0 {
				t.Fatalf("%s: no segments", name)
			}
			prevEnd := 0
			for i, s := range segs {
				if s.StartIdx != prevEnd {
					t.Fatalf("%s: segment %d starts at %d, want %d (gap or overlap)", name, i, s.StartIdx, prevEnd)
				}
				if s.EndIdx <= s.StartIdx {
					t.Fatalf("%s: segment %d empty: [%d, %d)", name, i, s.StartIdx, s.EndIdx)
				}
				if s.FirstKey != distinct[s.StartIdx] || s.LastKey != distinct[s.EndIdx-1] {
					t.Fatalf("%s: segment %d key range [%g, %g] disagrees with covered keys [%g, %g]",
						name, i, s.FirstKey, s.LastKey, distinct[s.StartIdx], distinct[s.EndIdx-1])
				}
				if i > 0 && s.FirstKey <= segs[i-1].LastKey {
					t.Fatalf("%s: segment %d FirstKey %g not above previous LastKey %g",
						name, i, s.FirstKey, segs[i-1].LastKey)
				}
				prevEnd = s.EndIdx
			}
			if prevEnd != len(distinct) {
				t.Fatalf("%s: segments tile %d keys, input has %d", name, prevEnd, len(distinct))
			}
			for i, x := range distinct {
				si := segment.Locate(segs, x)
				if s := segs[si]; i < s.StartIdx || i >= s.EndIdx {
					t.Fatalf("%s: Locate(%g) = segment %d [%d, %d), key is at %d",
						name, x, si, s.StartIdx, s.EndIdx, i)
				}
			}
			if e := segment.MaxError(distinct, firstPos, segs); e > eps+1e-6 {
				t.Fatalf("%s: error %g > eps %g", name, e, eps)
			}
		}
	})
}
