package lix_test

import (
	"sort"
	"testing"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/segment"
)

// FuzzLearnedLowerBound feeds arbitrary byte strings decoded as key sets
// and probes into the learned 1-D indexes and cross-checks LowerBound-
// dependent behavior (Get and Range) against the sorted-array reference.
//
// Run with: go test -fuzz=FuzzLearnedLowerBound -fuzztime=30s .
func FuzzLearnedLowerBound(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint64(5))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 0, 0}, uint64(1)<<63)
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, raw []byte, probe uint64) {
		// Decode raw into a key set (8 bytes per key, little-endian-ish).
		var keys []lix.Key
		for i := 0; i+8 <= len(raw) && len(keys) < 512; i += 8 {
			var k uint64
			for j := 0; j < 8; j++ {
				k = k<<8 | uint64(raw[i+j])
			}
			keys = append(keys, lix.Key(k))
		}
		if len(keys) == 0 {
			return
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		// Dedup (map semantics).
		recs := make([]lix.KV, 0, len(keys))
		for i, k := range keys {
			if i > 0 && keys[i-1] == k {
				continue
			}
			recs = append(recs, lix.KV{Key: k, Value: lix.Value(i)})
		}
		ref := lix.NewSortedArray(recs)
		for _, kind := range []string{"rmi", "pgm", "radixspline", "histtree"} {
			ix, err := lix.Build1D(kind, recs)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			v1, ok1 := ix.Get(lix.Key(probe))
			v2, ok2 := ref.Get(lix.Key(probe))
			if ok1 != ok2 || (ok1 && v1 != v2) {
				t.Fatalf("%s: Get(%d) = %d,%v, ref %d,%v", kind, probe, v1, ok1, v2, ok2)
			}
			// Range around the probe.
			lo, hi := lix.Key(probe), lix.Key(probe)+1024
			if hi < lo {
				hi = ^lix.Key(0)
			}
			n1 := ix.Range(lo, hi, func(lix.Key, lix.Value) bool { return true })
			n2 := ref.Range(lo, hi, func(lix.Key, lix.Value) bool { return true })
			if n1 != n2 {
				t.Fatalf("%s: Range(%d,%d) = %d, ref %d", kind, lo, hi, n1, n2)
			}
		}
	})
}

// FuzzPLAErrorBound checks the ε guarantee of both PLA builders on
// arbitrary monotone inputs.
//
// Run with: go test -fuzz=FuzzPLAErrorBound -fuzztime=30s .
func FuzzPLAErrorBound(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 201, 202}, uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, epsRaw uint8) {
		if len(raw) == 0 {
			return
		}
		eps := float64(epsRaw%64) + 1
		// Build a monotone key sequence from cumulative byte gaps.
		xs := make([]float64, 0, len(raw))
		cur := 0.0
		for _, b := range raw {
			cur += float64(b)
			xs = append(xs, cur)
		}
		distinct, firstPos := segment.Dedup(xs)
		for name, build := range map[string]func([]float64, []float64, float64) []segment.Segment{
			"anchored": segment.BuildAnchored,
			"optimal":  segment.BuildOptimal,
		} {
			segs := build(distinct, firstPos, eps)
			if len(segs) == 0 {
				t.Fatalf("%s: no segments", name)
			}
			if segs[0].StartIdx != 0 || segs[len(segs)-1].EndIdx != len(distinct) {
				t.Fatalf("%s: does not tile input", name)
			}
			if e := segment.MaxError(distinct, firstPos, segs); e > eps+1e-6 {
				t.Fatalf("%s: error %g > eps %g", name, e, eps)
			}
		}
	})
}

// FuzzExponentialSearch cross-checks ExponentialSearch against LowerBound
// from arbitrary start positions.
func FuzzExponentialSearch(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, uint64(2), 1)
	f.Fuzz(func(t *testing.T, raw []byte, probe uint64, start int) {
		keys := make([]core.Key, 0, len(raw))
		cur := core.Key(0)
		for _, b := range raw {
			cur += core.Key(b)
			keys = append(keys, cur)
		}
		want := core.LowerBound(keys, core.Key(probe))
		got := core.ExponentialSearch(keys, core.Key(probe), start)
		if got != want {
			t.Fatalf("ExponentialSearch(%d, start=%d) = %d, want %d", probe, start, got, want)
		}
	})
}
