// Top-level benchmarks: one testing.B benchmark per experiment in
// DESIGN.md's E4–E19 suite (E1–E3 are the taxonomy figure regenerations,
// exercised in internal/taxonomy). The lixbench CLI runs the same
// experiments at larger scale and prints the tables in EXPERIMENTS.md.
package lix_test

import (
	"fmt"
	"sync"
	"testing"

	lix "github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/dataset"
)

const (
	benchN        = 200000
	benchSpatialN = 100000
)

var (
	benchOnce  sync.Once
	benchKeys  []lix.Key
	benchRecs  []lix.KV
	benchProbe []lix.Key
	benchPts   []lix.Point
	benchPVs   []lix.PV
	benchRects []lix.Rect
	benchKNNQ  []lix.Point
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		benchKeys, err = dataset.Keys(dataset.Lognormal, benchN, 7)
		if err != nil {
			panic(err)
		}
		benchRecs = dataset.KV(benchKeys)
		benchProbe = dataset.LookupMix(benchKeys, 1<<16, 0.9, 8)
		benchPts, err = dataset.Points(dataset.SOSMLike, benchSpatialN, 2, 9)
		if err != nil {
			panic(err)
		}
		benchPVs = dataset.PV(benchPts)
		benchRects = dataset.RectQueries(benchPts, 1024, 1e-3, 10)
		benchKNNQ = dataset.KNNQueries(benchPts, 1024, 11)
	})
}

// BenchmarkE4Lookup1D — 1-D point lookups, learned vs traditional.
func BenchmarkE4Lookup1D(b *testing.B) {
	benchSetup(b)
	for _, kind := range lix.Static1DKinds() {
		ix, err := lix.Build1D(kind, benchRecs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind, func(b *testing.B) {
			b.ReportAllocs()
			var sink lix.Value
			for i := 0; i < b.N; i++ {
				v, _ := ix.Get(benchProbe[i&(1<<16-1)])
				sink += v
			}
			_ = sink
		})
	}
}

// BenchmarkE5Build1D — construction cost.
func BenchmarkE5Build1D(b *testing.B) {
	benchSetup(b)
	for _, kind := range lix.Static1DKinds() {
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lix.Build1D(kind, benchRecs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6Insert1D — random-order inserts into updatable indexes.
func BenchmarkE6Insert1D(b *testing.B) {
	benchSetup(b)
	for _, kind := range lix.Mutable1DKinds() {
		b.Run(kind, func(b *testing.B) {
			ix, err := lix.BuildMutable1D(kind)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := benchKeys[(i*2654435761)%len(benchKeys)]
				ix.Insert(k, lix.Value(i))
			}
		})
	}
}

// BenchmarkE7Range1D — range scans at ~1e-4 selectivity.
func BenchmarkE7Range1D(b *testing.B) {
	benchSetup(b)
	ranges := dataset.Ranges(benchKeys, 1024, 1e-4, 12)
	for _, kind := range lix.Static1DKinds() {
		ix, err := lix.Build1D(kind, benchRecs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind, func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				q := ranges[i&1023]
				sink += ix.Range(q.Lo, q.Hi, func(lix.Key, lix.Value) bool { return true })
			}
			_ = sink
		})
	}
}

// BenchmarkE8PGMEpsilon — the ε size/latency tradeoff.
func BenchmarkE8PGMEpsilon(b *testing.B) {
	benchSetup(b)
	for _, eps := range []int{8, 32, 128, 512} {
		ix, err := lix.NewPGM(benchRecs, eps)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("eps=%d", eps), func(b *testing.B) {
			b.ReportMetric(float64(ix.Stats().IndexBytes), "index-bytes")
			var sink lix.Value
			for i := 0; i < b.N; i++ {
				v, _ := ix.Get(benchProbe[i&(1<<16-1)])
				sink += v
			}
			_ = sink
		})
	}
}

// BenchmarkE9LBF — membership filter probes.
func BenchmarkE9LBF(b *testing.B) {
	benchSetup(b)
	negs, _ := dataset.Keys(dataset.Uniform, benchN, 13)
	bits := uint64(10 * len(benchKeys))
	std := lix.NewBloomFilterBits(bits, len(benchKeys))
	for _, k := range benchKeys {
		std.Add(k)
	}
	learned, err := lix.TrainLearnedBF(benchKeys, negs, bits)
	if err != nil {
		b.Fatal(err)
	}
	filters := map[string]lix.MembershipFilter{"bloom": std, "learned": learned}
	for _, name := range []string{"bloom", "learned"} {
		f := filters[name]
		b.Run(name, func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				if f.Contains(negs[i%len(negs)]) {
					sink++
				}
			}
			_ = sink
		})
	}
}

// BenchmarkE10PointMD — multi-dimensional exact-point queries.
func BenchmarkE10PointMD(b *testing.B) {
	benchSetup(b)
	for _, kind := range lix.SpatialKinds() {
		ix, err := lix.BuildSpatial(kind, benchPVs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind, func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				if _, ok := ix.Lookup(benchPVs[(i*40503)%len(benchPVs)].Point); ok {
					sink++
				}
			}
			_ = sink
		})
	}
}

// BenchmarkE11RangeMD — multi-dimensional range queries (~1e-3).
func BenchmarkE11RangeMD(b *testing.B) {
	benchSetup(b)
	for _, kind := range lix.SpatialKinds() {
		ix, err := lix.BuildSpatial(kind, benchPVs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind, func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				v, _ := ix.Search(benchRects[i&1023], func(lix.PV) bool { return true })
				sink += v
			}
			_ = sink
		})
	}
}

// BenchmarkE12KNN — k-nearest-neighbor queries.
func BenchmarkE12KNN(b *testing.B) {
	benchSetup(b)
	for _, kind := range []string{"rtree", "kdtree", "zm", "mlindex", "lisa"} {
		ixAny, err := lix.BuildSpatial(kind, benchPVs)
		if err != nil {
			b.Fatal(err)
		}
		ix := ixAny.(lix.KNNIndex)
		for _, k := range []int{1, 10, 100} {
			b.Run(fmt.Sprintf("%s/k=%d", kind, k), func(b *testing.B) {
				var sink int
				for i := 0; i < b.N; i++ {
					sink += len(ix.KNN(benchKNNQ[i&1023], k))
				}
				_ = sink
			})
		}
	}
}

// BenchmarkE13InsertMD — multi-dimensional inserts.
func BenchmarkE13InsertMD(b *testing.B) {
	benchSetup(b)
	extra, _ := dataset.Points(dataset.SOSMLike, 1<<16, 2, 14)
	for _, kind := range []string{"rtree", "quadtree", "grid", "lisa"} {
		b.Run(kind, func(b *testing.B) {
			ixAny, err := lix.BuildSpatial(kind, benchPVs)
			if err != nil {
				b.Fatal(err)
			}
			ix := ixAny.(lix.MutableSpatialIndex)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ix.Insert(extra[i&(1<<16-1)], lix.Value(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE14Concurrent — parallel mixed workload on the concurrent index.
func BenchmarkE14Concurrent(b *testing.B) {
	benchSetup(b)
	x, err := lix.BulkXIndex(benchRecs, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("xindex-95read", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				k := benchKeys[(i*2654435761)%len(benchKeys)]
				if i%20 == 0 {
					x.Insert(k, lix.Value(i))
				} else {
					x.Get(k)
				}
				i++
			}
		})
	})
	bt, err := lix.BulkBTree(0, benchRecs)
	if err != nil {
		b.Fatal(err)
	}
	var mu sync.RWMutex
	b.Run("btree-rwmutex-95read", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				k := benchKeys[(i*2654435761)%len(benchKeys)]
				if i%20 == 0 {
					mu.Lock()
					bt.Insert(k, lix.Value(i))
					mu.Unlock()
				} else {
					mu.RLock()
					bt.Get(k)
					mu.RUnlock()
				}
				i++
			}
		})
	})
}

// BenchmarkE15Adversarial — lookups on the adversarial distribution.
func BenchmarkE15Adversarial(b *testing.B) {
	keys, err := dataset.Keys(dataset.Adversarial, benchN, 15)
	if err != nil {
		b.Fatal(err)
	}
	recs := dataset.KV(keys)
	probes := dataset.LookupMix(keys, 1<<16, 1.0, 16)
	for _, kind := range []string{"pgm", "rmi", "btree"} {
		ix, err := lix.Build1D(kind, recs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(kind, func(b *testing.B) {
			var sink lix.Value
			for i := 0; i < b.N; i++ {
				v, _ := ix.Get(probes[i&(1<<16-1)])
				sink += v
			}
			_ = sink
		})
	}
}

// BenchmarkE16Layout — Flood tuned vs fixed layout on correlated data.
func BenchmarkE16Layout(b *testing.B) {
	pts, err := dataset.Points(dataset.SDiagonal, benchSpatialN, 2, 17)
	if err != nil {
		b.Fatal(err)
	}
	pvs := dataset.PV(pts)
	train := dataset.RectQueries(pts, 100, 1e-3, 18)
	test := dataset.RectQueries(pts, 1024, 1e-3, 19)
	tuned, _, err := lix.NewFloodTuned(pvs, train, 0)
	if err != nil {
		b.Fatal(err)
	}
	fixed, err := lix.NewFlood(pvs, lix.FloodConfig{SortDim: 1, Cols: []int{64, 1}})
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range []struct {
		name string
		ix   lix.SpatialIndex
	}{{"flood-tuned", tuned}, {"flood-fixed", fixed}} {
		b.Run(e.name, func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				v, _ := e.ix.Search(test[i&1023], func(lix.PV) bool { return true })
				sink += v
			}
			_ = sink
		})
	}
}

// BenchmarkE17SFCRanges — rectangle decomposition cost, Z vs Hilbert.
func BenchmarkE17SFCRanges(b *testing.B) {
	benchSetup(b)
	for _, curve := range []lix.ZMConfig{{}, {Curve: lix.CurveHilbert}} {
		name := "z"
		if curve.Curve == lix.CurveHilbert {
			name = "hilbert"
		}
		ix, err := lix.NewZMIndex(benchPVs, curve)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				v, _ := ix.Search(benchRects[i&1023], func(lix.PV) bool { return true })
				sink += v
			}
			_ = sink
		})
	}
}

// BenchmarkE18LearnedLSM — per-run learned index vs binary search.
func BenchmarkE18LearnedLSM(b *testing.B) {
	benchSetup(b)
	for _, variant := range []struct {
		name    string
		disable bool
	}{{"learned", false}, {"binary", true}} {
		db := lix.NewLearnedLSM(lix.LSMConfig{MemtableCap: 8192, DisableLearnedIndex: variant.disable})
		for i, rec := range benchRecs {
			db.Insert(rec.Key, lix.Value(i))
		}
		b.Run(variant.name, func(b *testing.B) {
			var sink lix.Value
			for i := 0; i < b.N; i++ {
				v, _ := db.Get(benchProbe[i&(1<<16-1)])
				sink += v
			}
			_ = sink
		})
	}
}

// BenchmarkE19DimSweep — range query cost vs dimensionality.
func BenchmarkE19DimSweep(b *testing.B) {
	for _, d := range []int{2, 3, 4} {
		pts, err := dataset.Points(dataset.SUniform, 1<<16, d, 20)
		if err != nil {
			b.Fatal(err)
		}
		pvs := dataset.PV(pts)
		queries := dataset.RectQueries(pts, 256, 1e-3, 21)
		for _, kind := range []string{"rtree", "flood", "zm"} {
			ix, err := lix.BuildSpatial(kind, pvs)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/d=%d", kind, d), func(b *testing.B) {
				var sink int
				for i := 0; i < b.N; i++ {
					v, _ := ix.Search(queries[i&255], func(lix.PV) bool { return true })
					sink += v
				}
				_ = sink
			})
		}
	}
}
