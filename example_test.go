package lix_test

import (
	"fmt"

	lix "github.com/lix-go/lix"
)

// Build a static learned index over sorted records and look up a key.
func ExampleNewPGM() {
	recs := make([]lix.KV, 100000)
	for i := range recs {
		recs[i] = lix.KV{Key: lix.Key(i) * 17, Value: lix.Value(i)}
	}
	ix, err := lix.NewPGM(recs, 32)
	if err != nil {
		panic(err)
	}
	v, ok := ix.Get(17 * 41)
	fmt.Println(v, ok)
	// Output: 41 true
}

// An updatable learned index with in-place, model-predicted inserts.
func ExampleNewALEX() {
	ix := lix.NewALEX()
	for i := 0; i < 1000; i++ {
		ix.Insert(lix.Key(i*3), lix.Value(i))
	}
	ix.Delete(3)
	_, ok := ix.Get(3)
	v, _ := ix.Get(6)
	fmt.Println(ok, v, ix.Len())
	// Output: false 2 999
}

// Range scans visit records in key order.
func ExampleIndex_range() {
	recs := []lix.KV{{Key: 1, Value: 10}, {Key: 5, Value: 50}, {Key: 9, Value: 90}, {Key: 12, Value: 120}}
	ix, _ := lix.NewRMI(recs, lix.RMIConfig{Stage2: 4})
	ix.Range(2, 10, func(k lix.Key, v lix.Value) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 5 50
	// 9 90
}

// Index 2-D points with a space-filling-curve learned index and run a
// window query.
func ExampleNewZMIndex() {
	var pvs []lix.PV
	for i := 0; i < 100; i++ {
		pvs = append(pvs, lix.PV{Point: lix.Point{float64(i), float64(i % 10)}, Value: lix.Value(i)})
	}
	ix, err := lix.NewZMIndex(pvs, lix.ZMConfig{})
	if err != nil {
		panic(err)
	}
	rect, _ := lix.NewRect(lix.Point{10, 0}, lix.Point{12, 9})
	n, _ := ix.Search(rect, func(pv lix.PV) bool { return true })
	fmt.Println(n)
	// Output: 3
}

// Learned Bloom filters guarantee zero false negatives.
func ExampleTrainLearnedBF() {
	var keys, negs []lix.Key
	for i := 0; i < 2000; i++ {
		keys = append(keys, lix.Key(1000000+i)) // dense band
		negs = append(negs, lix.Key(i*7))       // outside the band
	}
	f, err := lix.TrainLearnedBF(keys, negs, uint64(10*len(keys)))
	if err != nil {
		panic(err)
	}
	fmt.Println(f.Contains(keys[123]))
	// Output: true
}

// Watch a learned index's correction cost and decide when to retrain.
func ExampleNewDriftEWMA() {
	det, err := lix.NewDriftEWMA(8 /* baseline cost */, 2.0, 0.05)
	if err != nil {
		panic(err)
	}
	fired := false
	for i := 0; i < 500 && !fired; i++ {
		cost := 8.0
		if i > 100 {
			cost = 40 // the data distribution shifted
		}
		fired = det.Observe(cost)
	}
	fmt.Println(fired)
	// Output: true
}
