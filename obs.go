package lix

import (
	"bytes"
	"io"
	"time"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/trace"
)

// Observability types, re-exported from internal/obs for the public API.
type (
	// Metrics is an allocation-free, concurrency-safe metrics bundle: op
	// counters, log2-bucketed latency/probe/window histograms, and a
	// structural event log.
	Metrics = obs.Metrics
	// MetricsSnapshot is a point-in-time, JSON-serializable view of a
	// Metrics bundle.
	MetricsSnapshot = obs.Snapshot
	// HistogramSummary summarizes one histogram inside a MetricsSnapshot.
	HistogramSummary = obs.HistogramSummary
	// Event is one structural event (retrain, split, flush, ...).
	Event = obs.Event
	// EventType enumerates the structural event kinds.
	EventType = obs.EventType
	// DriftDetector consumes a per-operation cost stream and reports when
	// the distribution shifted. drift.EWMA and drift.PageHinkley satisfy it.
	DriftDetector = obs.DriftDetector
)

// Structural event kinds re-exported from internal/obs.
const (
	EvRetrain     = obs.EvRetrain
	EvNodeSplit   = obs.EvNodeSplit
	EvBufferFlush = obs.EvBufferFlush
	EvBufferMerge = obs.EvBufferMerge
	EvCompaction  = obs.EvCompaction
	EvRCUSwap     = obs.EvRCUSwap
	EvDriftTrip   = obs.EvDriftTrip
	EvCheckpoint  = obs.EvCheckpoint
	EvWALFlush    = obs.EvWALFlush
	EvRecovery    = obs.EvRecovery
	EvDrain       = obs.EvDrain
	EvSlowRequest = obs.EvSlowRequest
	EvPageEvict   = obs.EvPageEvict
	EvPageFlush   = obs.EvPageFlush
)

// NewMetrics returns an empty metrics bundle named name (the name labels
// expvar/Prometheus output and event sources).
func NewMetrics(name string) *Metrics { return obs.NewMetrics(name) }

// EnableSearchMetrics routes the last-mile search instrumentation of every
// index in the process (probe counts and error-window widths from
// core.SearchRange / ExponentialSearch) into m. The instrumentation is
// process-wide because the search helpers are shared by all indexes; with
// no recorder installed they pay one atomic load + branch (~1-2 ns, see
// DESIGN.md). Pass the same bundle to Observe to correlate searches with
// the ops that issued them.
func EnableSearchMetrics(m *Metrics) { core.SetSearchRecorder(m) }

// DisableSearchMetrics detaches the process-wide search recorder.
func DisableSearchMetrics() { core.SetSearchRecorder(nil) }

// observable is satisfied by every instrumented index (ALEX, LIPP, dynamic
// PGM, FITing-tree, XIndex, learned LSM) through their adapters.
type observable interface {
	SetObserver(obs.Recorder)
}

// ObservedIndex wraps an Index, recording per-op latency and result
// cardinality into a Metrics bundle. Reads pass through unchanged.
type ObservedIndex struct {
	idx Index
	m   *Metrics
}

// Observe wraps idx so every Get and Range records latency, hit/miss and
// result cardinality into m. If the underlying index emits structural
// events (splits, retrains, flushes, ...), those are routed into m.Events
// as well. The wrapper is behavior-transparent: results are identical to
// the unwrapped index (the conformance suite asserts this for every
// registered index kind).
func Observe(idx Index, m *Metrics) *ObservedIndex {
	if o, ok := idx.(observable); ok {
		o.SetObserver(m)
	}
	return &ObservedIndex{idx: idx, m: m}
}

// Unwrap returns the wrapped index.
func (o *ObservedIndex) Unwrap() Index { return o.idx }

// Metrics returns the bundle this wrapper records into.
func (o *ObservedIndex) Metrics() *Metrics { return o.m }

// Get returns the value stored for k, recording latency and hit/miss.
func (o *ObservedIndex) Get(k Key) (Value, bool) {
	start := time.Now()
	v, ok := o.idx.Get(k)
	o.m.GetNS.Observe(uint64(time.Since(start)))
	o.m.Lookups.Inc()
	if ok {
		o.m.Hits.Inc()
	}
	return v, ok
}

// Range scans [lo, hi], recording latency and result cardinality.
func (o *ObservedIndex) Range(lo, hi Key, fn func(Key, Value) bool) int {
	start := time.Now()
	n := o.idx.Range(lo, hi, fn)
	o.m.RangeNS.Observe(uint64(time.Since(start)))
	o.m.RangeLen.Observe(uint64(n))
	o.m.Ranges.Inc()
	return n
}

// SearchRange collects [lo, hi] through the wrapped index's RangeSearcher
// capability (so a wrapped Sharded keeps its parallel cross-shard
// fan-out), recording latency and result cardinality.
func (o *ObservedIndex) SearchRange(lo, hi Key) []KV {
	start := time.Now()
	out := core.CollectRange(o.idx, lo, hi)
	o.m.RangeNS.Observe(uint64(time.Since(start)))
	o.m.RangeLen.Observe(uint64(len(out)))
	o.m.Ranges.Inc()
	return out
}

// LookupBatch resolves keys through the wrapped index's batched path when
// it has one, recording whole-batch latency and cardinality alongside the
// per-record lookup counters.
func (o *ObservedIndex) LookupBatch(keys []Key) ([]Value, []bool) {
	start := time.Now()
	vals, oks := core.LookupBatch(o.idx, keys)
	o.m.BatchNS.Observe(uint64(time.Since(start)))
	o.m.BatchLen.Observe(uint64(len(keys)))
	o.m.Batches.Inc()
	o.m.Lookups.Add(uint64(len(keys)))
	for _, ok := range oks {
		if ok {
			o.m.Hits.Inc()
		}
	}
	return vals, oks
}

// LookupBatchInto is the allocation-free batched read path: answers land
// in the caller's vals and oks slices through the wrapped index's
// zero-alloc capability when it has one. The same batch metrics are
// recorded as LookupBatch — the metrics bundle's counters and histograms
// are preallocated, so the whole call stays allocation-free.
func (o *ObservedIndex) LookupBatchInto(keys []Key, vals []Value, oks []bool) {
	start := time.Now()
	core.LookupBatchInto(o.idx, keys, vals, oks)
	o.m.BatchNS.Observe(uint64(time.Since(start)))
	o.m.BatchLen.Observe(uint64(len(keys)))
	o.m.Batches.Inc()
	o.m.Lookups.Add(uint64(len(keys)))
	for _, ok := range oks {
		if ok {
			o.m.Hits.Inc()
		}
	}
}

// LookupBatchSpan is LookupBatch with span forwarding: the same batch
// metrics are recorded, then the batch routes to the wrapped index's
// span-aware path (when it has one) so a Durable below this wrapper can
// attribute its wal/fsync stages.
func (o *ObservedIndex) LookupBatchSpan(keys []Key, sp *Span) ([]Value, []bool) {
	start := time.Now()
	vals, oks := trace.LookupBatch(o.idx, keys, sp)
	o.m.BatchNS.Observe(uint64(time.Since(start)))
	o.m.BatchLen.Observe(uint64(len(keys)))
	o.m.Batches.Inc()
	o.m.Lookups.Add(uint64(len(keys)))
	for _, ok := range oks {
		if ok {
			o.m.Hits.Inc()
		}
	}
	return vals, oks
}

// Close forwards the io.Closer capability, so a wrapped Durable can be
// closed without unwrapping. Indexes without the capability close as a
// no-op.
func (o *ObservedIndex) Close() error {
	if c, ok := o.idx.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Len returns the number of records (not recorded).
func (o *ObservedIndex) Len() int { return o.idx.Len() }

// Stats forwards to the wrapped index (not recorded).
func (o *ObservedIndex) Stats() Stats { return o.idx.Stats() }

// CheckInvariants forwards to the wrapped index's structural self-check,
// so lix.CheckInvariants sees through the wrapper.
func (o *ObservedIndex) CheckInvariants() error { return CheckInvariants(o.idx) }

// ObservedMutableIndex additionally records Insert and Delete.
type ObservedMutableIndex struct {
	ObservedIndex
	mut MutableIndex
}

// ObserveMutable is Observe for updatable indexes: Insert and Delete
// latencies are recorded too.
func ObserveMutable(idx MutableIndex, m *Metrics) *ObservedMutableIndex {
	if o, ok := idx.(observable); ok {
		o.SetObserver(m)
	}
	return &ObservedMutableIndex{ObservedIndex: ObservedIndex{idx: idx, m: m}, mut: idx}
}

// Insert upserts (k, v), recording latency.
func (o *ObservedMutableIndex) Insert(k Key, v Value) {
	start := time.Now()
	o.mut.Insert(k, v)
	o.m.InsertNS.Observe(uint64(time.Since(start)))
	o.m.Inserts.Inc()
}

// Delete removes k, recording latency.
func (o *ObservedMutableIndex) Delete(k Key) bool {
	start := time.Now()
	ok := o.mut.Delete(k)
	o.m.DeleteNS.Observe(uint64(time.Since(start)))
	o.m.Deletes.Inc()
	return ok
}

// InsertBatch upserts recs through the wrapped index's batched path when
// it has one, recording whole-batch latency and cardinality.
func (o *ObservedMutableIndex) InsertBatch(recs []KV) {
	start := time.Now()
	core.InsertBatch(o.mut, recs)
	o.m.BatchNS.Observe(uint64(time.Since(start)))
	o.m.BatchLen.Observe(uint64(len(recs)))
	o.m.Batches.Inc()
	o.m.Inserts.Add(uint64(len(recs)))
}

// DeleteBatch removes keys through the wrapped index's batched path when
// it has one, recording whole-batch latency and cardinality.
func (o *ObservedMutableIndex) DeleteBatch(keys []Key) []bool {
	start := time.Now()
	oks := core.DeleteBatch(o.mut, keys)
	o.m.BatchNS.Observe(uint64(time.Since(start)))
	o.m.BatchLen.Observe(uint64(len(keys)))
	o.m.Batches.Inc()
	o.m.Deletes.Add(uint64(len(keys)))
	return oks
}

// InsertBatchSpan is InsertBatch with span forwarding; see
// ObservedIndex.LookupBatchSpan.
func (o *ObservedMutableIndex) InsertBatchSpan(recs []KV, sp *Span) {
	start := time.Now()
	trace.InsertBatch(o.mut, recs, sp)
	o.m.BatchNS.Observe(uint64(time.Since(start)))
	o.m.BatchLen.Observe(uint64(len(recs)))
	o.m.Batches.Inc()
	o.m.Inserts.Add(uint64(len(recs)))
}

// DeleteBatchSpan is DeleteBatch with span forwarding; see
// ObservedIndex.LookupBatchSpan.
func (o *ObservedMutableIndex) DeleteBatchSpan(keys []Key, sp *Span) []bool {
	start := time.Now()
	oks := trace.DeleteBatch(o.mut, keys, sp)
	o.m.BatchNS.Observe(uint64(time.Since(start)))
	o.m.BatchLen.Observe(uint64(len(keys)))
	o.m.Batches.Inc()
	o.m.Deletes.Add(uint64(len(keys)))
	return oks
}

// WriteMetricsPrometheus renders the given bundles in Prometheus text
// exposition format (stdlib only, no client dependency).
func WriteMetricsPrometheus(w io.Writer, ms ...*Metrics) error {
	return obs.WritePrometheusAll(w, ms...)
}

// MetricsFlusher periodically writes a Prometheus snapshot file via
// atomic temp-file+rename replacement, so an exposition dump survives a
// crash between scrapes. See NewMetricsFlusher.
type MetricsFlusher = obs.Flusher

// NewMetricsFlusher returns a flusher rendering ms to path in Prometheus
// text format. Call Start to begin the periodic ticker (interval <= 0
// disables it) and Stop for the final flush — with no interval that
// preserves the classic write-once-at-exit snapshot behavior.
func NewMetricsFlusher(path string, interval time.Duration, ms ...*Metrics) *MetricsFlusher {
	return obs.NewFlusher(path, interval, func(buf *bytes.Buffer) error {
		return obs.WritePrometheusAll(buf, ms...)
	})
}
