package lix

import (
	"fmt"
)

// InvariantChecker is the optional self-check hook an index implementation
// may expose. Implementations validate their own structural invariants —
// the PGM ε-bound, ALEX's gapped-array ordering, LIPP's precise positions,
// B+-tree separators and leaf chain, R-tree MBR containment — and return a
// descriptive error on the first violation. Checks are O(n) and meant for
// tests and debugging, not production hot paths; the conformance suite in
// internal/conform calls them between differential-testing operations.
type InvariantChecker interface {
	CheckInvariants() error
}

// CheckInvariants runs ix's structural self-check if it exposes one and
// returns nil otherwise. The façade adapters embed the implementation
// types, so a CheckInvariants method added to an internal index is
// automatically reachable through the public constructors.
func CheckInvariants(ix any) error {
	if c, ok := ix.(InvariantChecker); ok {
		return c.CheckInvariants()
	}
	return nil
}

// CheckInvariants verifies the sorted-array baseline: parallel arrays of
// equal length with strictly ascending keys.
func (s *sortedArray) CheckInvariants() error {
	if len(s.keys) != len(s.recs) {
		return fmt.Errorf("sorted-array: %d keys for %d records", len(s.keys), len(s.recs))
	}
	for i := range s.keys {
		if i > 0 && s.keys[i] <= s.keys[i-1] {
			return fmt.Errorf("sorted-array: keys not strictly ascending at %d", i)
		}
		if s.keys[i] != s.recs[i].Key {
			return fmt.Errorf("sorted-array: keys[%d] != recs[%d].Key", i, i)
		}
	}
	return nil
}
