package lix

import (
	"testing"
)

func durableSeed(n int) []KV {
	recs := make([]KV, n)
	for i := range recs {
		recs[i] = KV{Key: Key(i * 2), Value: Value(i)}
	}
	return recs
}

func TestDurableFacadeLifecycle(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts DurableOptions
	}{
		{"btree", DurableOptions{Fsync: FsyncNever, CheckpointEvery: -1}},
		{"alex", DurableOptions{Kind: "alex", Fsync: FsyncNever, CheckpointEvery: -1}},
		{"sharded", DurableOptions{Shards: 4, Fsync: FsyncNever, CheckpointEvery: -1}},
		{"lsm", DurableOptions{Engine: EngineLSM, Fsync: FsyncNever, CheckpointEvery: -1}},
		{"lsm-sharded", DurableOptions{Engine: EngineLSM, Shards: 4, Fsync: FsyncNever, CheckpointEvery: -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := NewDurable(dir, durableSeed(500), tc.opts)
			if err != nil {
				t.Fatalf("NewDurable: %v", err)
			}
			for i := 0; i < 200; i++ {
				if err := d.Put(Key(i*2+1), Value(i+1000)); err != nil {
					t.Fatalf("put: %v", err)
				}
			}
			if ok, err := d.Del(0); err != nil || !ok {
				t.Fatalf("del: %v %v", ok, err)
			}
			wantLen := d.Len()
			if err := d.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			// A bare Open must rebuild the stored configuration from meta.
			d2, err := Open(dir, DurableOptions{Fsync: FsyncNever, CheckpointEvery: -1})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer d2.Close()
			if d2.Len() != wantLen {
				t.Fatalf("recovered %d records, want %d", d2.Len(), wantLen)
			}
			if v, ok := d2.Get(3); !ok || v != 1001 {
				t.Fatalf("recovered get(3) = %d,%v", v, ok)
			}
			if _, ok := d2.Get(0); ok {
				t.Fatal("deleted key resurrected")
			}
			if tc.opts.Shards > 0 && d2.Segments() != tc.opts.Shards {
				t.Fatalf("segments %d, want %d", d2.Segments(), tc.opts.Shards)
			}
			if want := tc.opts.Engine; want != "" && d2.Engine() != want {
				t.Fatalf("reopened engine %q, want %q", d2.Engine(), want)
			}
		})
	}
}

func TestDurableFacadeEnginePersists(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDurable(dir, durableSeed(300), DurableOptions{Engine: EngineLSM, Fsync: FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Engine() != EngineLSM {
		t.Fatalf("engine = %q, want lsm", d.Engine())
	}
	d.Put(1, 1)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// A bare reopen resolves to the on-disk engine.
	d2, err := Open(dir, DurableOptions{Fsync: FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Engine() != EngineLSM {
		t.Fatalf("bare reopen engine = %q, want lsm", d2.Engine())
	}
	d2.Close()

	// Asking for the other engine on reopen is a configuration error.
	if _, err := Open(dir, DurableOptions{Engine: EngineSnapshot}); err == nil {
		t.Fatal("conflicting engine accepted on reopen")
	}
	if _, err := Open(t.TempDir(), DurableOptions{Engine: "no-such-engine"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestDurableFacadeConfigConflicts(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDurable(dir, nil, DurableOptions{Kind: "btree", Shards: 2, Fsync: FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	d.Put(1, 1)
	d.Close()

	if _, err := Open(dir, DurableOptions{Kind: "alex"}); err == nil {
		t.Fatal("conflicting kind accepted on reopen")
	}
	if _, err := Open(dir, DurableOptions{Shards: 8}); err == nil {
		t.Fatal("conflicting shard count accepted on reopen")
	}
	// Matching explicit options are fine.
	d2, err := Open(dir, DurableOptions{Kind: "btree", Shards: 2, Fsync: FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("matching options rejected: %v", err)
	}
	d2.Close()

	if _, err := Open(t.TempDir(), DurableOptions{Kind: "no-such-kind"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Open(t.TempDir(), DurableOptions{Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
}

func TestDurableFacadeBatches(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DurableOptions{Shards: 4, Fsync: FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	recs := durableSeed(1000)
	d.InsertBatch(recs)
	keys := make([]Key, len(recs))
	for i, r := range recs {
		keys[i] = r.Key
	}
	vals, oks := d.LookupBatch(keys)
	for i := range keys {
		if !oks[i] || vals[i] != recs[i].Value {
			t.Fatalf("batch lookup %d: (%d,%v)", i, vals[i], oks[i])
		}
	}
	d.Close()

	d2, err := Open(dir, DurableOptions{Fsync: FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != len(recs) {
		t.Fatalf("recovered %d, want %d", d2.Len(), len(recs))
	}
}
