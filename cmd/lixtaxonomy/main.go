// Command lixtaxonomy regenerates the paper's three figures from the
// machine-readable catalog (experiments E1–E3 in DESIGN.md): the spectrum
// of learned indexes, the taxonomy tree, and the evolution timeline.
//
// Usage:
//
//	lixtaxonomy -fig 1|2|3    # one figure
//	lixtaxonomy               # all three
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/lix-go/lix/internal/taxonomy"
)

func main() {
	fig := flag.Int("fig", 0, "figure to print (1, 2, or 3; 0 = all)")
	flag.Parse()
	switch *fig {
	case 0:
		fmt.Println(taxonomy.Spectrum())
		fmt.Println(taxonomy.Tree())
		fmt.Println(taxonomy.Timeline())
	case 1:
		fmt.Println(taxonomy.Spectrum())
	case 2:
		fmt.Println(taxonomy.Tree())
	case 3:
		fmt.Println(taxonomy.Timeline())
	default:
		fmt.Fprintln(os.Stderr, "lixtaxonomy: figure must be 1, 2, or 3")
		os.Exit(1)
	}
}
