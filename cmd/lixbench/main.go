// Command lixbench runs the lix experiment suite (E4–E19 from DESIGN.md)
// and prints the result tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	lixbench -e E4            # one experiment at default scale
//	lixbench -e all -n 100000 # whole suite at a custom dataset size
//	lixbench -list            # list experiments
//
// Sharded serving mode and the benchmark regression harness:
//
//	lixbench -shards 8 -concurrency 8          # serving throughput table
//	                                           # (baseline vs sharded vs
//	                                           # xindex, 95/5 and 50/50)
//	lixbench -shards 8 -concurrency 8 -rev abc -bench-out .
//	                                           # also write BENCH_abc.json
//	lixbench -compare BENCH_old.json,BENCH_new.json
//	                                           # exit 1 if any result
//	                                           # regressed by >15%
//	lixbench -batch 16,256,1024 -shards 8      # batched vs looped ops
//	                                           # (results merge into an
//	                                           # existing BENCH_<rev>.json)
//	lixbench -trace-overhead -quick            # tracing cost off/1%/100%
//	                                           # vs no tracer; gates the
//	                                           # disabled-sampling cost <2%
//	lixbench -paged -quick                     # paged indexes: cold vs
//	                                           # warm buffer-pool lookups;
//	                                           # gates warm >= 3x cold
//	lixbench -lsm -quick                       # checkpoint engines under
//	                                           # write load; gates LSM
//	                                           # ckpt rate >= 2x snapshot
//
// Profiling and metrics:
//
//	lixbench -e E4 -cpuprofile cpu.out   # write a pprof CPU profile
//	lixbench -e E4 -memprofile mem.out   # write a pprof heap profile
//	lixbench -e all -metrics out.json    # dump config, per-experiment wall
//	                                     # times and the process-wide search
//	                                     # metrics (probe/window histograms)
//	                                     # as JSON
//
// Profiles are written in runtime/pprof format; inspect them with
// `go tool pprof cpu.out`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/bench"
)

// metricsReport is the -metrics JSON document.
type metricsReport struct {
	Config      bench.Config        `json:"config"`
	Experiments []experimentTiming  `json:"experiments"`
	Metrics     lix.MetricsSnapshot `json:"metrics"`
}

type experimentTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

func main() {
	var (
		exp        = flag.String("e", "all", "experiment ID (E4..E19) or 'all'")
		n          = flag.Int("n", 0, "dataset size (0 = default)")
		q          = flag.Int("q", 0, "queries per measurement (0 = default)")
		seed       = flag.Int64("seed", 7, "generator seed")
		quick      = flag.Bool("quick", false, "small quick-check scale")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		metricsOut = flag.String("metrics", "", "write run metrics JSON to this file")
		cpuOut     = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memOut     = flag.String("memprofile", "", "write a pprof heap profile to this file")

		shards      = flag.Int("shards", 0, "serving mode: shard count (enables the serving benchmark)")
		concurrency = flag.Int("concurrency", 0, "serving mode: worker goroutines (enables the serving benchmark)")
		rev         = flag.String("rev", "dev", "revision label for -bench-out")
		benchOut    = flag.String("bench-out", "", "serving mode: write BENCH_<rev>.json into this directory")
		compare     = flag.String("compare", "", "compare two bench files, 'old.json,new.json'; exit 1 on >15% regression")

		durable = flag.Bool("durable", false, "durability mode: measure WAL insert throughput and cold-start recovery")
		fsync   = flag.String("fsync", "all", "durability mode: fsync policy to measure (always|interval|never|all)")

		batch = flag.String("batch", "", "batch mode: comma-separated batch sizes, e.g. '16,256,1024'")

		paged = flag.Bool("paged", false, "paged mode: cold vs warm buffer-pool lookup throughput for the disk-backed paged indexes")

		lsm = flag.Bool("lsm", false, "storage-engine mode: checkpoint cost under write load, LSM vs snapshot; gates LSM ckpt >= 2x snapshot")

		serveAddr = flag.String("serve-addr", "", "loadgen mode: drive a running lixserve at this address")
		pipeline  = flag.Int("pipeline", 32, "loadgen mode: requests per pipelined group")
		targetQPS = flag.Float64("target-qps", 0, "loadgen mode: open-loop aggregate request rate (0 = closed loop)")
		duration  = flag.Duration("duration", 5*time.Second, "loadgen mode: measured send window")

		traceOver = flag.Bool("trace-overhead", false, "measure request-tracing overhead (off/1%/100% sampling vs no tracer)")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(bench.IDs(), " "))
		return
	}
	if *compare != "" {
		compareBenchFiles(*compare)
		return
	}

	// Profiles cover every mode below (serving, batch, durable, loadgen,
	// trace-overhead and the experiment suite): the CPU profile brackets
	// the whole run and the heap profile is written at exit. They used to
	// be wired only into the experiment path, which made the serving
	// modes — the ones the scaling work needed profiled — unprofilable.
	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memOut != "" {
		defer func() {
			f, err := os.Create(*memOut)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // materialize live-heap stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}()
	}

	if *serveAddr != "" {
		runLoadgen(*serveAddr, *pipeline, *targetQPS, *duration, *concurrency, *n, *seed, *quick, *rev, *benchOut)
		return
	}
	if *traceOver {
		runTraceOverhead(*pipeline, *duration, *concurrency, *shards, *n, *seed, *quick, *rev, *benchOut)
		return
	}
	if *batch != "" {
		runBatch(*batch, *shards, *n, *q, *seed, *quick, *rev, *benchOut)
		return
	}
	if *paged {
		runPaged(*n, *q, *seed, *quick, *rev, *benchOut)
		return
	}
	if *lsm {
		runLSM(*n, *q, *seed, *quick, *rev, *benchOut)
		return
	}
	if *durable {
		runDurable(*fsync, *shards, *concurrency, *n, *q, *seed, *quick, *rev, *benchOut)
		return
	}
	if *shards > 0 || *concurrency > 0 {
		runServing(*shards, *concurrency, *n, *q, *seed, *quick, *rev, *benchOut)
		return
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *q > 0 {
		cfg.Q = *q
	}
	cfg.Seed = *seed

	var m *lix.Metrics
	if *metricsOut != "" {
		// Route every last-mile search in the run into one bundle so the
		// report carries probe-count and error-window histograms.
		m = lix.NewMetrics("lixbench")
		lix.EnableSearchMetrics(m)
		defer lix.DisableSearchMetrics()
	}

	ids := bench.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	var timings []experimentTiming
	for _, id := range ids {
		start := time.Now()
		tables, err := bench.Run(id, cfg)
		if err != nil {
			fatal(err)
		}
		timings = append(timings, experimentTiming{ID: id, Seconds: time.Since(start).Seconds()})
		for _, t := range tables {
			t.Render(os.Stdout)
		}
	}

	if *metricsOut != "" {
		report := metricsReport{Config: cfg, Experiments: timings, Metrics: m.Snapshot()}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*metricsOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

}

// runServing executes the sharded serving benchmark (lixbench -shards N
// -concurrency W) and optionally writes a BENCH_<rev>.json for -compare.
func runServing(shards, workers, n, q int, seed int64, quick bool, rev, outDir string) {
	cfg := bench.DefaultServingConfig()
	if quick {
		cfg.N, cfg.OpsPerWorker = 100_000, 20_000
	}
	if shards > 0 {
		cfg.Shards = shards
	}
	if workers > 0 {
		cfg.Workers = workers
	}
	if n > 0 {
		cfg.N = n
	}
	if q > 0 {
		cfg.OpsPerWorker = q
	}
	cfg.Seed = seed

	tables, rows, err := bench.RunServing(cfg)
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	if outDir != "" {
		f := bench.ServingBenchFile(rev, cfg, rows)
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(outDir, "BENCH_"+rev+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

// runDurable executes the durability benchmark (lixbench -durable
// -fsync=<policy>): per-policy WAL insert throughput and cold-start
// recovery time, optionally written as a BENCH_<rev>.json for -compare.
func runDurable(fsync string, shards, workers, n, q int, seed int64, quick bool, rev, outDir string) {
	cfg := bench.DefaultDurableBenchConfig()
	if quick {
		cfg.N, cfg.Ops = 50_000, 10_000
	}
	if shards > 0 {
		cfg.Shards = shards
	}
	if workers > 0 {
		cfg.Workers = workers
	}
	if n > 0 {
		cfg.N = n
	}
	if q > 0 {
		cfg.Ops = q
	}
	cfg.Seed = seed
	if fsync != "" && fsync != "all" {
		p, err := lix.ParseSyncPolicy(fsync)
		if err != nil {
			fatal(err)
		}
		cfg.Policies = []lix.SyncPolicy{p}
	}

	tables, results, err := bench.RunDurable(cfg)
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	if outDir != "" {
		f := bench.BenchFile{Rev: rev, Results: results}
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(outDir, "BENCH_"+rev+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

// runBatch executes the batched-vs-looped operation benchmark (lixbench
// -batch 16,256,1024). With -bench-out the batch/... results are merged
// into an existing BENCH_<rev>.json (appending to a serving or durable
// run's results) or written fresh, so one CI job can accumulate every
// mode into a single regression file.
func runBatch(sizeSpec string, shards, n, q int, seed int64, quick bool, rev, outDir string) {
	var sizes []int
	for _, part := range strings.Split(sizeSpec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var size int
		if _, err := fmt.Sscanf(part, "%d", &size); err != nil || size <= 0 {
			fatal(fmt.Errorf("-batch wants comma-separated positive sizes, got %q", sizeSpec))
		}
		sizes = append(sizes, size)
	}
	cfg := bench.BatchConfig{Sizes: sizes, Shards: shards, Seed: seed}
	if quick {
		cfg.N, cfg.Ops = 100_000, 20_000
	}
	if n > 0 {
		cfg.N = n
	}
	if q > 0 {
		cfg.Ops = q
	}

	tables, results, err := bench.RunBatch(cfg)
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	if outDir != "" {
		path := filepath.Join(outDir, "BENCH_"+rev+".json")
		f := bench.BenchFile{Rev: rev}
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &f); err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
		}
		f.Rev = rev
		f.MergeResults(results)
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

// runPaged executes the paged-storage benchmark (lixbench -paged):
// random lookups against the disk-backed indexes through a buffer pool
// far smaller than the dataset (cold) and one holding every page (warm).
// With -bench-out the paged/... results — including the blocking
// warm >= 3x cold intra-run floor — merge into an existing
// BENCH_<rev>.json like the batch mode does.
func runPaged(n, q int, seed int64, quick bool, rev, outDir string) {
	cfg := bench.DefaultPagedConfig()
	if quick {
		cfg.N, cfg.Lookups = 60_000, 30_000
	}
	if n > 0 {
		cfg.N = n
	}
	if q > 0 {
		cfg.Lookups = q
	}
	cfg.Seed = seed

	tables, results, err := bench.RunPaged(cfg)
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	if outDir != "" {
		path := filepath.Join(outDir, "BENCH_"+rev+".json")
		f := bench.BenchFile{Rev: rev}
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &f); err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
		}
		f.Rev = rev
		f.MergeResults(results)
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

// runLSM executes the storage-engine benchmark (lixbench -lsm): the same
// write-heavy checkpointing workload under the snapshot and LSM engines,
// plus cold-start recovery and the absent-key filter probe phase. The
// lsm/checkpoint/lsm result carries the blocking LSM >= 2x snapshot
// checkpoint-rate floor. With -bench-out the lsm/... results merge into
// an existing BENCH_<rev>.json like the batch mode does.
func runLSM(n, q int, seed int64, quick bool, rev, outDir string) {
	cfg := bench.DefaultLSMConfig()
	if quick {
		cfg.N, cfg.Writes, cfg.Checkpoints, cfg.Reads = 400_000, 6_000, 6, 30_000
	}
	if n > 0 {
		cfg.N = n
	}
	if q > 0 {
		cfg.Writes = q
	}
	cfg.Seed = seed

	tables, results, err := bench.RunLSM(cfg)
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	if outDir != "" {
		path := filepath.Join(outDir, "BENCH_"+rev+".json")
		f := bench.BenchFile{Rev: rev}
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &f); err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
		}
		f.Rev = rev
		f.MergeResults(results)
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

// runLoadgen executes the wire-protocol load generator (lixbench
// -serve-addr host:port) against a running lixserve: pipelined 95/5
// GET/SET groups over -concurrency connections, open-loop paced under
// -target-qps, per-request latency percentiles read from the client-side
// obs histogram. With -bench-out the serve/... results merge into an
// existing BENCH_<rev>.json like the batch mode does.
func runLoadgen(addr string, pipeline int, qps float64, dur time.Duration,
	conns, keys int, seed int64, quick bool, rev, outDir string) {

	cfg := bench.DefaultLoadgenConfig()
	cfg.Addr = addr
	cfg.Pipeline = pipeline
	cfg.TargetQPS = qps
	cfg.Duration = dur
	cfg.Seed = seed
	if quick {
		cfg.Duration = 2 * time.Second
	}
	if conns > 0 {
		cfg.Conns = conns
	}
	if keys > 0 {
		cfg.Keys = keys
	}

	tables, _, results, err := bench.RunLoadgen(cfg)
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	if outDir != "" {
		path := filepath.Join(outDir, "BENCH_"+rev+".json")
		f := bench.BenchFile{Rev: rev}
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &f); err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
		}
		f.Rev = rev
		f.MergeResults(results)
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

// runTraceOverhead executes the tracing-cost benchmark (lixbench
// -trace-overhead): the wire workload against in-process servers with
// no tracer / disabled sampling / 1% / 100%, emitting informational
// trace/... throughputs plus the gating trace_overhead/off ratio
// (MaxDrop 2%) that pins the disabled-tracing cost. With -bench-out the
// results merge into an existing BENCH_<rev>.json like the batch mode.
func runTraceOverhead(pipeline int, dur time.Duration, conns, shards, n int,
	seed int64, quick bool, rev, outDir string) {

	cfg := bench.DefaultTraceOverheadConfig()
	cfg.Pipeline = pipeline
	cfg.Duration = dur
	cfg.Seed = seed
	if quick {
		cfg.N, cfg.Duration = 100_000, 2*time.Second
	}
	if conns > 0 {
		cfg.Conns = conns
	}
	if shards > 0 {
		cfg.Shards = shards
	}
	if n > 0 {
		cfg.N = n
	}

	tables, results, err := bench.RunTraceOverhead(cfg)
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	if outDir != "" {
		path := filepath.Join(outDir, "BENCH_"+rev+".json")
		f := bench.BenchFile{Rev: rev}
		if data, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(data, &f); err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
		}
		f.Rev = rev
		f.MergeResults(results)
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

// compareBenchFiles implements -compare old.json,new.json: print every
// delta and exit non-zero if any throughput regressed past 15%.
func compareBenchFiles(spec string) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		fatal(fmt.Errorf("-compare wants 'old.json,new.json', got %q", spec))
	}
	read := func(path string) bench.BenchFile {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		var f bench.BenchFile
		if err := json.Unmarshal(data, &f); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		return f
	}
	oldF, newF := read(strings.TrimSpace(parts[0])), read(strings.TrimSpace(parts[1]))
	regs, notes := bench.CompareBenchFiles(oldF, newF, 0.15)
	fmt.Printf("comparing %s (%s) -> %s (%s)\n", parts[0], oldF.Rev, parts[1], newF.Rev)
	for _, n := range notes {
		fmt.Println("  ", n)
	}
	for _, r := range regs {
		fmt.Println("  REGRESSION:", r)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "lixbench: %d result(s) regressed by more than 15%%\n", len(regs))
		os.Exit(1)
	}
	fmt.Println("no regressions past 15%")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lixbench:", err)
	os.Exit(1)
}
