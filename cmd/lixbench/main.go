// Command lixbench runs the lix experiment suite (E4–E19 from DESIGN.md)
// and prints the result tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	lixbench -e E4            # one experiment at default scale
//	lixbench -e all -n 100000 # whole suite at a custom dataset size
//	lixbench -list            # list experiments
//
// Profiling and metrics:
//
//	lixbench -e E4 -cpuprofile cpu.out   # write a pprof CPU profile
//	lixbench -e E4 -memprofile mem.out   # write a pprof heap profile
//	lixbench -e all -metrics out.json    # dump config, per-experiment wall
//	                                     # times and the process-wide search
//	                                     # metrics (probe/window histograms)
//	                                     # as JSON
//
// Profiles are written in runtime/pprof format; inspect them with
// `go tool pprof cpu.out`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/lix-go/lix"
	"github.com/lix-go/lix/internal/bench"
)

// metricsReport is the -metrics JSON document.
type metricsReport struct {
	Config      bench.Config        `json:"config"`
	Experiments []experimentTiming  `json:"experiments"`
	Metrics     lix.MetricsSnapshot `json:"metrics"`
}

type experimentTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

func main() {
	var (
		exp        = flag.String("e", "all", "experiment ID (E4..E19) or 'all'")
		n          = flag.Int("n", 0, "dataset size (0 = default)")
		q          = flag.Int("q", 0, "queries per measurement (0 = default)")
		seed       = flag.Int64("seed", 7, "generator seed")
		quick      = flag.Bool("quick", false, "small quick-check scale")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		metricsOut = flag.String("metrics", "", "write run metrics JSON to this file")
		cpuOut     = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memOut     = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(bench.IDs(), " "))
		return
	}
	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *q > 0 {
		cfg.Q = *q
	}
	cfg.Seed = *seed

	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var m *lix.Metrics
	if *metricsOut != "" {
		// Route every last-mile search in the run into one bundle so the
		// report carries probe-count and error-window histograms.
		m = lix.NewMetrics("lixbench")
		lix.EnableSearchMetrics(m)
		defer lix.DisableSearchMetrics()
	}

	ids := bench.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	var timings []experimentTiming
	for _, id := range ids {
		start := time.Now()
		tables, err := bench.Run(id, cfg)
		if err != nil {
			fatal(err)
		}
		timings = append(timings, experimentTiming{ID: id, Seconds: time.Since(start).Seconds()})
		for _, t := range tables {
			t.Render(os.Stdout)
		}
	}

	if *metricsOut != "" {
		report := metricsReport{Config: cfg, Experiments: timings, Metrics: m.Snapshot()}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*metricsOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	if *memOut != "" {
		f, err := os.Create(*memOut)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // materialize live-heap stats
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lixbench:", err)
	os.Exit(1)
}
