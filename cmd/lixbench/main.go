// Command lixbench runs the lix experiment suite (E4–E19 from DESIGN.md)
// and prints the result tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	lixbench -e E4            # one experiment at default scale
//	lixbench -e all -n 100000 # whole suite at a custom dataset size
//	lixbench -list            # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/lix-go/lix/internal/bench"
)

func main() {
	var (
		exp   = flag.String("e", "all", "experiment ID (E4..E19) or 'all'")
		n     = flag.Int("n", 0, "dataset size (0 = default)")
		q     = flag.Int("q", 0, "queries per measurement (0 = default)")
		seed  = flag.Int64("seed", 7, "generator seed")
		quick = flag.Bool("quick", false, "small quick-check scale")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(bench.IDs(), " "))
		return
	}
	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *q > 0 {
		cfg.Q = *q
	}
	cfg.Seed = *seed

	ids := bench.IDs()
	if *exp != "all" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		tables, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lixbench:", err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
	}
}
