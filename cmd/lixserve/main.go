// lixserve serves a lix stack over TCP.
//
// It assembles a NewStack engine (backend kind, optional sharding,
// optional durability) behind the pipelined wire protocol of DESIGN.md
// §7: length-prefixed binary frames carrying GET/SET/DEL/MGET/MSET/SCAN,
// with pipelined bursts coalesced into single batch calls — one shard
// fan-out per read burst, one WAL frame group per write burst.
//
//	lixserve -addr :7070 -e pgm -shards 8 -n 1000000
//	lixserve -addr :7070 -dir /var/lib/lix -fsync always
//
// SIGINT/SIGTERM trigger a graceful drain: the listener closes, in-flight
// pipelined groups complete and flush, then connections and the stack
// close. With -metrics-out the final metrics snapshot is written in
// Prometheus text format on exit.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	lix "github.com/lix-go/lix"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		engine     = flag.String("e", "btree", "backend index kind (see lixtaxonomy)")
		shards     = flag.Int("shards", 0, "shard count (0 = unsharded)")
		dir        = flag.String("dir", "", "durable directory (empty = in-memory)")
		fsyncMode  = flag.String("fsync", "always", "WAL durability: always|interval|never (with -dir)")
		n          = flag.Int("n", 0, "preload n synthetic records (ignored when -dir has data)")
		seed       = flag.Int64("seed", 42, "preload key seed")
		maxConns   = flag.Int("max-conns", 0, "connection limit (0 = default)")
		maxFrame   = flag.Int("max-frame", 0, "max frame bytes (0 = default 1MiB)")
		drainWait  = flag.Duration("drain-timeout", 10*time.Second, "graceful drain budget")
		metricsOut = flag.String("metrics-out", "", "write a Prometheus metrics snapshot here on exit")
		quiet      = flag.Bool("q", false, "suppress startup/shutdown log lines")
	)
	flag.Parse()

	logf := func(format string, args ...interface{}) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "lixserve: "+format+"\n", args...)
		os.Exit(1)
	}

	fsync, err := lix.ParseSyncPolicy(*fsyncMode)
	if err != nil {
		fail("%v", err)
	}

	var recs []lix.KV
	if *n > 0 && *dir == "" {
		recs = make([]lix.KV, *n)
		r := rand.New(rand.NewSource(*seed))
		cur := lix.Key(0)
		for i := range recs {
			cur += lix.Key(r.Intn(16) + 1)
			recs[i] = lix.KV{Key: cur, Value: lix.Value(i)}
		}
	}

	metrics := lix.NewMetrics("lixserve")
	stack, err := lix.NewStack(recs, lix.StackConfig{
		Kind:    *engine,
		Shards:  *shards,
		Dir:     *dir,
		Fsync:   fsync,
		Metrics: metrics,
	})
	if err != nil {
		fail("stack: %v", err)
	}

	srv := lix.NewServer(stack, lix.ServeConfig{
		Addr:         *addr,
		MaxConns:     *maxConns,
		MaxFrame:     *maxFrame,
		DrainTimeout: *drainWait,
		Metrics:      metrics,
		CloseStore:   true,
	})
	if err := srv.Start(); err != nil {
		fail("listen: %v", err)
	}
	logf("lixserve: serving %s (kind=%s shards=%d durable=%v) on %s",
		plural(stack.Len(), "record"), *engine, *shards, *dir != "", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logf("lixserve: %s, draining...", s)
	if err := srv.Shutdown(); err != nil {
		fmt.Fprintf(os.Stderr, "lixserve: drain: %v\n", err)
	}

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fail("metrics-out: %v", err)
		}
		if err := metrics.WritePrometheus(f); err != nil {
			fail("metrics-out: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("metrics-out: %v", err)
		}
		logf("lixserve: metrics snapshot written to %s", *metricsOut)
	}
	logf("lixserve: bye")
}

func plural(n int, noun string) string {
	if n == 1 {
		return fmt.Sprintf("%d %s", n, noun)
	}
	return fmt.Sprintf("%d %ss", n, noun)
}
