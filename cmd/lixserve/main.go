// lixserve serves a lix stack over TCP.
//
// It assembles a NewStack engine (backend kind, optional sharding,
// optional durability) behind the pipelined wire protocol of DESIGN.md
// §7: length-prefixed binary frames carrying GET/SET/DEL/MGET/MSET/SCAN,
// with pipelined bursts coalesced into single batch calls — one shard
// fan-out per read burst, one WAL frame group per write burst.
//
//	lixserve -addr :7070 -e pgm -shards 8 -n 1000000
//	lixserve -addr :7070 -dir /var/lib/lix -fsync always
//
// With -admin-addr set, an out-of-band HTTP admin plane serves
// /metrics (Prometheus), /healthz, /readyz (503 while draining),
// /events, /topk and /debug/pprof/* alongside the data plane.
// Request tracing (-trace-sample, -trace-slow, -topk) samples request
// groups into per-stage spans feeding the slow-request event log and
// the hot-key sketch; disabled sampling costs one atomic load per group.
//
// SIGINT/SIGTERM trigger a graceful drain: /readyz flips to 503, the
// listener closes, in-flight pipelined groups complete and flush, then
// connections and the stack close. With -metrics-out the metrics
// snapshot is written in Prometheus text format on exit — and, with
// -metrics-interval, periodically during the run via atomic replacement.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	lix "github.com/lix-go/lix"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		engine     = flag.String("e", "btree", "backend index kind (see lixtaxonomy)")
		shards     = flag.Int("shards", 0, "shard count (0 = unsharded)")
		dir        = flag.String("dir", "", "durable directory (empty = in-memory)")
		fsyncMode  = flag.String("fsync", "always", "WAL durability: always|interval|never (with -dir)")
		n          = flag.Int("n", 0, "preload n synthetic records (ignored when -dir has data)")
		seed       = flag.Int64("seed", 42, "preload key seed")
		maxConns   = flag.Int("max-conns", 0, "connection limit (0 = default)")
		maxFrame   = flag.Int("max-frame", 0, "max frame bytes (0 = default 1MiB)")
		drainWait  = flag.Duration("drain-timeout", 10*time.Second, "graceful drain budget")
		metricsOut = flag.String("metrics-out", "", "write a Prometheus metrics snapshot here on exit")
		metricsInt = flag.Duration("metrics-interval", 0, "also rewrite -metrics-out periodically (0 = exit only)")
		adminAddr  = flag.String("admin-addr", "", "serve the HTTP admin plane (/metrics, /healthz, /readyz, /events, /topk, /debug/pprof) here")
		traceRate  = flag.Float64("trace-sample", 0.01, "fraction of request groups traced into per-stage spans [0,1]")
		traceSlow  = flag.Duration("trace-slow", 50*time.Millisecond, "log sampled groups at least this slow to the event log (0 = off)")
		topK       = flag.Int("topk", 64, "hot-key sketch capacity for /topk (0 = off)")
		quiet      = flag.Bool("q", false, "suppress startup/shutdown log lines")
	)
	flag.Parse()

	logf := func(format string, args ...interface{}) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	fail := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "lixserve: "+format+"\n", args...)
		os.Exit(1)
	}

	fsync, err := lix.ParseSyncPolicy(*fsyncMode)
	if err != nil {
		fail("%v", err)
	}

	var recs []lix.KV
	if *n > 0 && *dir == "" {
		recs = make([]lix.KV, *n)
		r := rand.New(rand.NewSource(*seed))
		cur := lix.Key(0)
		for i := range recs {
			cur += lix.Key(r.Intn(16) + 1)
			recs[i] = lix.KV{Key: cur, Value: lix.Value(i)}
		}
	}

	metrics := lix.NewMetrics("lixserve")
	stack, err := lix.NewStack(recs, lix.StackConfig{
		Kind:    *engine,
		Shards:  *shards,
		Dir:     *dir,
		Fsync:   fsync,
		Metrics: metrics,
		Trace: &lix.TraceOptions{
			SampleRate:    *traceRate,
			SlowThreshold: *traceSlow,
			TopK:          *topK,
		},
	})
	if err != nil {
		fail("stack: %v", err)
	}

	srv := lix.NewServer(stack, lix.ServeConfig{
		Addr:         *addr,
		MaxConns:     *maxConns,
		MaxFrame:     *maxFrame,
		DrainTimeout: *drainWait,
		Metrics:      metrics,
		Tracer:       stack.Tracer(),
		CloseStore:   true,
	})
	if err := srv.Start(); err != nil {
		fail("listen: %v", err)
	}
	logf("lixserve: serving %s (kind=%s shards=%d durable=%v) on %s",
		plural(stack.Len(), "record"), *engine, *shards, *dir != "", srv.Addr())

	// Admin plane: out-of-band HTTP on its own listener so operability
	// survives data-plane saturation.
	var admin *http.Server
	if *adminAddr != "" {
		admin = &http.Server{
			Addr: *adminAddr,
			Handler: lix.NewAdminHandler(lix.AdminConfig{
				Metrics: []*lix.Metrics{metrics},
				Tracer:  stack.Tracer(),
				Ready:   func() bool { return !srv.Draining() },
			}),
		}
		go func() {
			if err := admin.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "lixserve: admin: %v\n", err)
			}
		}()
		logf("lixserve: admin plane on %s", *adminAddr)
	}

	// Metrics snapshot file: periodic with -metrics-interval, final on
	// exit either way.
	var flusher *lix.MetricsFlusher
	if *metricsOut != "" {
		flusher = lix.NewMetricsFlusher(*metricsOut, *metricsInt, metrics)
		flusher.Start()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logf("lixserve: %s, draining...", s)
	if err := srv.Shutdown(); err != nil {
		fmt.Fprintf(os.Stderr, "lixserve: drain: %v\n", err)
	}
	if admin != nil {
		admin.Close()
	}

	if flusher != nil {
		if err := flusher.Stop(); err != nil {
			fail("metrics-out: %v", err)
		}
		logf("lixserve: metrics snapshot written to %s", *metricsOut)
	}
	logf("lixserve: bye")
}

func plural(n int, noun string) string {
	if n == 1 {
		return fmt.Sprintf("%d %s", n, noun)
	}
	return fmt.Sprintf("%d %ss", n, noun)
}
