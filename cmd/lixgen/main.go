// Command lixgen generates and inspects the synthetic benchmark datasets
// (the SOSD-style substitutes described in DESIGN.md).
//
// Usage:
//
//	lixgen -kind lognormal -n 1000000 -out keys.bin   # write binary keys
//	lixgen -kind lognormal -n 100000 -stats           # print distribution stats
//	lixgen -spatial s-osm -n 100000 -dim 2 -stats     # spatial dataset stats
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func main() {
	var (
		kind    = flag.String("kind", "", "1-D distribution: uniform|normal|lognormal|clustered|sequential|adversarial")
		spatial = flag.String("spatial", "", "spatial distribution: s-uniform|s-osm|s-skewed|s-diagonal")
		n       = flag.Int("n", 1000000, "number of keys/points")
		dim     = flag.Int("dim", 2, "spatial dimensionality")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output file (little-endian binary); empty = no file")
		stats   = flag.Bool("stats", false, "print distribution statistics")
	)
	flag.Parse()

	switch {
	case *kind != "":
		keys, err := dataset.Keys(dataset.Kind(*kind), *n, *seed)
		if err != nil {
			fatal(err)
		}
		if *stats {
			printKeyStats(keys)
		}
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			w := bufio.NewWriter(f)
			for _, k := range keys {
				if err := binary.Write(w, binary.LittleEndian, uint64(k)); err != nil {
					fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %d keys to %s\n", len(keys), *out)
		}
	case *spatial != "":
		pts, err := dataset.Points(dataset.SpatialKind(*spatial), *n, *dim, *seed)
		if err != nil {
			fatal(err)
		}
		if *stats {
			printPointStats(pts)
		}
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			w := bufio.NewWriter(f)
			for _, p := range pts {
				for _, c := range p {
					if err := binary.Write(w, binary.LittleEndian, c); err != nil {
						fatal(err)
					}
				}
			}
			if err := w.Flush(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %d points to %s\n", len(pts), *out)
		}
	default:
		fmt.Fprintln(os.Stderr, "lixgen: pass -kind or -spatial; see -h")
		os.Exit(2)
	}
}

func printKeyStats(keys []core.Key) {
	if len(keys) == 0 {
		fmt.Println("empty dataset")
		return
	}
	var minGap, maxGap uint64 = math.MaxUint64, 0
	var sumGap float64
	for i := 1; i < len(keys); i++ {
		g := keys[i] - keys[i-1]
		if g < minGap {
			minGap = g
		}
		if g > maxGap {
			maxGap = g
		}
		sumGap += float64(g)
	}
	fmt.Printf("n=%d min=%d max=%d\n", len(keys), keys[0], keys[len(keys)-1])
	fmt.Printf("gaps: min=%d max=%d mean=%.1f (max/mean=%.1fx)\n",
		minGap, maxGap, sumGap/float64(len(keys)-1), float64(maxGap)/(sumGap/float64(len(keys)-1)))
}

func printPointStats(pts []core.Point) {
	if len(pts) == 0 {
		fmt.Println("empty dataset")
		return
	}
	dim := len(pts[0])
	for d := 0; d < dim; d++ {
		lo, hi, sum := math.Inf(1), math.Inf(-1), 0.0
		for _, p := range pts {
			if p[d] < lo {
				lo = p[d]
			}
			if p[d] > hi {
				hi = p[d]
			}
			sum += p[d]
		}
		fmt.Printf("dim %d: min=%.1f max=%.1f mean=%.1f\n", d, lo, hi, sum/float64(len(pts)))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lixgen:", err)
	os.Exit(1)
}
