package lix

import (
	"testing"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/dataset"
)

func sortedRecs(t *testing.T, n int, seed int64) []KV {
	t.Helper()
	keys, err := dataset.Keys(dataset.Clustered, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return dataset.KV(keys)
}

func TestAllStatic1DKindsAgree(t *testing.T) {
	recs := sortedRecs(t, 8000, 42)
	probes, _ := dataset.Keys(dataset.Uniform, 2000, 43)
	ref := NewSortedArray(recs)
	for _, kind := range Static1DKinds() {
		ix, err := Build1D(kind, recs)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ix.Len() != len(recs) {
			t.Fatalf("%s: len = %d", kind, ix.Len())
		}
		// Hits.
		for i := 0; i < len(recs); i += 13 {
			v, ok := ix.Get(recs[i].Key)
			if !ok || v != recs[i].Value {
				t.Fatalf("%s: Get(%d) = %d,%v", kind, recs[i].Key, v, ok)
			}
		}
		// Probes (mostly misses) agree with the reference.
		for _, p := range probes {
			v1, ok1 := ix.Get(p)
			v2, ok2 := ref.Get(p)
			if ok1 != ok2 || (ok1 && v1 != v2) {
				t.Fatalf("%s: probe %d disagrees with reference", kind, p)
			}
		}
		// Range agreement.
		for _, q := range dataset.Ranges(keysOf(recs), 10, 0.01, 44) {
			n1 := ix.Range(q.Lo, q.Hi, func(Key, Value) bool { return true })
			n2 := ref.Range(q.Lo, q.Hi, func(Key, Value) bool { return true })
			if n1 != n2 {
				t.Fatalf("%s: Range = %d, ref %d", kind, n1, n2)
			}
		}
		if st := ix.Stats(); st.Count != len(recs) {
			t.Fatalf("%s: stats count %d", kind, st.Count)
		}
	}
}

func keysOf(recs []KV) []Key {
	out := make([]Key, len(recs))
	for i := range recs {
		out[i] = recs[i].Key
	}
	return out
}

func TestAllMutable1DKindsAgree(t *testing.T) {
	for _, kind := range Mutable1DKinds() {
		ix, err := BuildMutable1D(kind)
		if err != nil {
			t.Fatal(err)
		}
		const n = 3000
		for i := 0; i < n; i++ {
			ix.Insert(Key(i*7), Value(i))
		}
		if ix.Len() != n {
			t.Fatalf("%s: len = %d", kind, ix.Len())
		}
		for i := 0; i < n; i += 3 {
			if v, ok := ix.Get(Key(i * 7)); !ok || v != Value(i) {
				t.Fatalf("%s: Get(%d) failed", kind, i*7)
			}
		}
		for i := 0; i < n; i += 2 {
			if !ix.Delete(Key(i * 7)) {
				t.Fatalf("%s: Delete(%d) missed", kind, i*7)
			}
		}
		if ix.Len() != n/2 {
			t.Fatalf("%s: len after deletes = %d", kind, ix.Len())
		}
		count := ix.Range(0, ^Key(0), func(Key, Value) bool { return true })
		if count != n/2 {
			t.Fatalf("%s: range count = %d", kind, count)
		}
	}
	if _, err := BuildMutable1D("nope"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Build1D("nope", nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestHybridRMIAndXIndexFacade(t *testing.T) {
	recs := sortedRecs(t, 5000, 45)
	h, err := NewHybridRMI(recs, RMIConfig{Stage2: 64}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := h.Get(recs[7].Key); !ok || v != recs[7].Value {
		t.Fatal("hybrid get")
	}
	if n := h.Range(recs[0].Key, recs[99].Key, func(Key, Value) bool { return true }); n != 100 {
		t.Fatalf("hybrid range = %d", n)
	}
	x, err := BulkXIndex(recs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := x.Get(recs[3].Key); !ok || v != recs[3].Value {
		t.Fatal("xindex get")
	}
}

func TestAllSpatialKindsAgree(t *testing.T) {
	pts, _ := dataset.Points(dataset.SOSMLike, 4000, 2, 46)
	pvs := dataset.PV(pts)
	queries := dataset.RectQueries(pts, 15, 0.01, 47)
	for _, kind := range SpatialKinds() {
		ix, err := BuildSpatial(kind, pvs)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ix.Len() != len(pvs) {
			t.Fatalf("%s: len = %d", kind, ix.Len())
		}
		for qi, q := range queries {
			want := 0
			for _, pv := range pvs {
				if q.Contains(pv.Point) {
					want++
				}
			}
			got, _ := ix.Search(q, func(PV) bool { return true })
			if got != want {
				t.Fatalf("%s q%d: got %d, want %d", kind, qi, got, want)
			}
		}
		// Point lookups.
		for i := 0; i < len(pvs); i += 97 {
			if _, ok := ix.Lookup(pvs[i].Point); !ok {
				t.Fatalf("%s: lookup miss", kind)
			}
		}
		// kNN where supported.
		if knn, ok := ix.(KNNIndex); ok {
			got := knn.KNN(pvs[0].Point, 5)
			if len(got) != 5 {
				t.Fatalf("%s: knn len %d", kind, len(got))
			}
		}
	}
	if _, err := BuildSpatial("nope", pvs); err == nil {
		t.Fatal("unknown spatial kind accepted")
	}
}

func TestQdTreeAndFloodFacade(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 3000, 2, 48)
	pvs := dataset.PV(pts)
	queries := dataset.RectQueries(pts, 20, 0.01, 49)
	qd, err := NewQdTree(pvs, queries, QdTreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fl, res, err := NewFloodTuned(pvs, queries, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated < 1 {
		t.Fatal("flood tuner evaluated nothing")
	}
	for _, q := range queries[:5] {
		want := 0
		for _, pv := range pvs {
			if q.Contains(pv.Point) {
				want++
			}
		}
		if got, _ := qd.Search(q, func(PV) bool { return true }); got != want {
			t.Fatalf("qdtree: got %d want %d", got, want)
		}
		if got, _ := fl.Search(q, func(PV) bool { return true }); got != want {
			t.Fatalf("flood: got %d want %d", got, want)
		}
	}
}

func TestLearnedRTreeFacade(t *testing.T) {
	pts, _ := dataset.Points(dataset.SUniform, 3000, 2, 50)
	pvs := dataset.PV(pts)
	lr, err := NewLearnedRTree(0, 0, pvs)
	if err != nil {
		t.Fatal(err)
	}
	found, _ := lr.PointSearch(pvs[0].Point, func(PV) bool { return true })
	if found < 1 {
		t.Fatal("learned rtree point search")
	}
}

func TestFiltersFacade(t *testing.T) {
	keys, _ := dataset.Keys(dataset.Sequential, 4000, 51)
	negs, _ := dataset.Keys(dataset.Uniform, 4000, 52)
	present := map[core.Key]bool{}
	for _, k := range keys {
		present[k] = true
	}
	var trainNegs []Key
	for _, k := range negs {
		if !present[k] {
			trainNegs = append(trainNegs, k)
		}
	}
	bits := uint64(10 * len(keys))
	std := NewBloomFilterBits(bits, len(keys))
	for _, k := range keys {
		std.Add(k)
	}
	learned, err := TrainLearnedBF(keys, trainNegs, bits)
	if err != nil {
		t.Fatal(err)
	}
	sand, err := TrainSandwichedBF(keys, trainNegs, bits)
	if err != nil {
		t.Fatal(err)
	}
	part, err := TrainPartitionedBF(keys, trainNegs, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []MembershipFilter{std, learned, sand, part} {
		for _, k := range keys {
			if !f.Contains(k) {
				t.Fatalf("%T: false negative", f)
			}
		}
		if fpr := MeasureFPR(f, trainNegs); fpr < 0 || fpr > 1 {
			t.Fatalf("FPR out of range: %g", fpr)
		}
	}
}

func TestNewRectFacade(t *testing.T) {
	if _, err := NewRect(Point{1}, Point{0}); err == nil {
		t.Fatal("bad rect accepted")
	}
	r, err := NewRect(Point{0, 0}, Point{1, 1})
	if err != nil || r.Dim() != 2 {
		t.Fatal("rect facade broken")
	}
}
