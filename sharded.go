package lix

import (
	"fmt"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/shard"
)

// Sharded is the range-partitioned concurrent serving layer: it wraps any
// registered index kind into an N-shard structure with per-shard RWMutex
// or RCU snapshot-swap concurrency, parallel bulk build, batched
// LookupBatch/InsertBatch, and cross-shard SearchRange fan-out. All
// methods are safe for concurrent use. See DESIGN.md §"Sharded serving
// layer".
type Sharded = shard.Sharded

// ShardMode selects the per-shard concurrency scheme of a Sharded index.
type ShardMode = shard.LockMode

// The shard lock modes.
const (
	// ShardRW guards each shard's mutable index with one RWMutex.
	ShardRW = shard.LockRW
	// ShardRCU serves lock-free reads from an immutable snapshot + delta
	// pair and swaps in merged snapshots RCU-style.
	ShardRCU = shard.LockRCU
)

// ShardedConfig configures NewSharded.
type ShardedConfig struct {
	// Shards is the shard count (0 selects 8).
	Shards int
	// Mode selects the concurrency scheme (default ShardRW).
	Mode ShardMode
	// Backend is the per-shard mutable index kind for ShardRW mode, one of
	// Mutable1DKinds ("" selects "btree").
	Backend string
	// Snapshot is the per-shard read-optimized index kind for ShardRCU
	// mode, one of Static1DKinds ("" selects "pgm").
	Snapshot string
	// DeltaCap is the per-shard delta size that triggers an RCU snapshot
	// merge (0 selects the shard package default).
	DeltaCap int
	// MetricsPrefix, when non-empty, creates one Metrics bundle per shard
	// named "<prefix>-shard<i>" (retrieve them with ShardMetrics).
	MetricsPrefix string
}

// NewSharded builds the sharded serving layer over recs (sorted ascending,
// distinct keys; may be nil to start empty). Shard boundaries are the
// record quantiles when records are given, else uniform over the key
// space; the per-shard sub-indexes build in parallel, one goroutine per
// shard.
func NewSharded(recs []KV, cfg ShardedConfig) (*Sharded, error) {
	if cfg.Backend == "" {
		cfg.Backend = "btree"
	}
	if cfg.Snapshot == "" {
		cfg.Snapshot = "pgm"
	}
	b := shard.Builders{}
	switch cfg.Mode {
	case ShardRW:
		kind := cfg.Backend
		if _, err := BuildMutable1D(kind); err != nil {
			return nil, err
		}
		b.New = func() (shard.MutableIndex, error) { return BuildMutable1D(kind) }
		switch kind {
		// Kinds with a faster bulk path than an insert loop.
		case "btree":
			b.Bulk = func(recs []core.KV) (shard.MutableIndex, error) { return BulkBTree(0, recs) }
		case "alex":
			b.Bulk = func(recs []core.KV) (shard.MutableIndex, error) { return BulkALEX(recs) }
		case "lipp":
			b.Bulk = func(recs []core.KV) (shard.MutableIndex, error) { return BulkLIPP(recs) }
		}
	case ShardRCU:
		kind := cfg.Snapshot
		if _, err := Build1D(kind, nil); err != nil {
			return nil, fmt.Errorf("lix: sharded snapshot kind %q must build empty: %w", kind, err)
		}
		b.Static = func(recs []core.KV) (shard.Index, error) { return Build1D(kind, recs) }
	default:
		return nil, fmt.Errorf("lix: unknown shard mode %v", cfg.Mode)
	}
	return shard.New(recs, shard.Config{
		Shards:        cfg.Shards,
		Mode:          cfg.Mode,
		DeltaCap:      cfg.DeltaCap,
		MetricsPrefix: cfg.MetricsPrefix,
	}, b)
}

// SearchRange collects every record of ix with lo <= key <= hi into a
// slice, in ascending key order. The result is always non-nil: before this
// helper, collecting a range out of an empty index returned nil from some
// implementations and an empty slice from others, and callers comparing
// against empty slices diverged. A *Sharded index answers through its
// parallel cross-shard fan-out; everything else scans through Range.
func SearchRange(ix Index, lo, hi Key) []KV {
	if s, ok := ix.(*Sharded); ok {
		return s.SearchRange(lo, hi)
	}
	out := []KV{}
	if lo > hi {
		return out
	}
	ix.Range(lo, hi, func(k Key, v Value) bool {
		out = append(out, KV{Key: k, Value: v})
		return true
	})
	return out
}
