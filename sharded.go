package lix

import (
	"fmt"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/registry"
	"github.com/lix-go/lix/internal/shard"
)

// Sharded is the range-partitioned concurrent serving layer: it wraps any
// registered index kind into an N-shard structure with per-shard RWMutex
// or RCU snapshot-swap concurrency, parallel bulk build, batched
// LookupBatch/InsertBatch, and cross-shard SearchRange fan-out. All
// methods are safe for concurrent use. See DESIGN.md §"Sharded serving
// layer".
type Sharded = shard.Sharded

// ShardMode selects the per-shard concurrency scheme of a Sharded index.
type ShardMode = shard.LockMode

// The shard lock modes.
const (
	// ShardRW guards each shard's mutable index with one RWMutex.
	ShardRW = shard.LockRW
	// ShardRCU serves lock-free reads from an immutable snapshot + delta
	// pair and swaps in merged snapshots RCU-style.
	ShardRCU = shard.LockRCU
)

// ShardedConfig configures NewSharded.
type ShardedConfig struct {
	// Shards is the shard count (0 selects 8).
	Shards int
	// Mode selects the concurrency scheme (default ShardRW).
	Mode ShardMode
	// Backend is the per-shard mutable index kind for ShardRW mode, one of
	// Mutable1DKinds ("" selects "btree").
	Backend string
	// Snapshot is the per-shard read-optimized index kind for ShardRCU
	// mode, one of Static1DKinds ("" selects "pgm").
	Snapshot string
	// DeltaCap is the per-shard delta size that schedules a background RCU
	// snapshot merge (0 selects the shard package default).
	DeltaCap int
	// DeltaBound is the hard per-shard delta size: writers about to grow
	// the delta past it while a merge is in flight block until the merge
	// completes (0 selects 4×DeltaCap).
	DeltaBound int
	// MetricsPrefix, when non-empty, creates one Metrics bundle per shard
	// named "<prefix>-shard<i>" (retrieve them with ShardMetrics).
	MetricsPrefix string
}

// NewSharded builds the sharded serving layer over recs (sorted ascending,
// distinct keys; may be nil to start empty). Shard boundaries are the
// record quantiles when records are given, else uniform over the key
// space; the per-shard sub-indexes build in parallel, one goroutine per
// shard.
func NewSharded(recs []KV, cfg ShardedConfig) (*Sharded, error) {
	if cfg.Backend == "" {
		cfg.Backend = "btree"
	}
	if cfg.Snapshot == "" {
		cfg.Snapshot = "pgm"
	}
	b := shard.Builders{}
	switch cfg.Mode {
	case ShardRW:
		k, err := registry.Mutable(cfg.Backend)
		if err != nil {
			return nil, err
		}
		b.New = func() (shard.MutableIndex, error) { return k.New() }
		if k.Bulk != nil {
			// The kind has a bulk path faster than an insert loop.
			b.Bulk = func(recs []core.KV) (shard.MutableIndex, error) { return k.Bulk(recs) }
		}
	case ShardRCU:
		k, err := registry.Static(cfg.Snapshot)
		if err != nil {
			return nil, err
		}
		if !k.Caps.AllowsEmpty {
			return nil, fmt.Errorf("lix: sharded snapshot kind %q must build empty", cfg.Snapshot)
		}
		b.Static = func(recs []core.KV) (shard.Index, error) { return k.Static(recs) }
	default:
		return nil, fmt.Errorf("lix: unknown shard mode %v", cfg.Mode)
	}
	return shard.New(recs, shard.Config{
		Shards:        cfg.Shards,
		Mode:          cfg.Mode,
		DeltaCap:      cfg.DeltaCap,
		DeltaBound:    cfg.DeltaBound,
		MetricsPrefix: cfg.MetricsPrefix,
	}, b)
}

// SearchRange collects every record of ix with lo <= key <= hi into a
// slice, in ascending key order. The result is always non-nil: before this
// helper, collecting a range out of an empty index returned nil from some
// implementations and an empty slice from others, and callers comparing
// against empty slices diverged. Dispatch is capability-driven: any index
// exposing the RangeSearcher capability (a Sharded's parallel cross-shard
// fan-out, or any wrapper forwarding it — obs, durable, Stack) answers
// through it; everything else scans through Range.
func SearchRange(ix Index, lo, hi Key) []KV {
	return core.CollectRange(ix, lo, hi)
}
