package lix

import (
	"fmt"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/flood"
	"github.com/lix-go/lix/internal/grid"
	"github.com/lix-go/lix/internal/kdtree"
	"github.com/lix-go/lix/internal/lisa"
	"github.com/lix-go/lix/internal/mlindex"
	"github.com/lix-go/lix/internal/qdtree"
	"github.com/lix-go/lix/internal/quadtree"
	"github.com/lix-go/lix/internal/rtree"
	"github.com/lix-go/lix/internal/zm"
)

// Spatial types, re-exported for the public API.
type (
	// Point is a point in d-dimensional space.
	Point = core.Point
	// Rect is an axis-aligned rectangle with inclusive bounds.
	Rect = core.Rect
	// PV is a point/value record.
	PV = core.PV
)

// NewRect builds a validated rectangle.
func NewRect(min, max Point) (Rect, error) { return core.NewRect(min, max) }

// SpatialIndex answers exact-point and rectangle queries over points.
type SpatialIndex interface {
	// Lookup returns the value of a stored point equal to p.
	Lookup(p Point) (Value, bool)
	// Search calls fn for every point inside rect; fn returning false
	// stops. It returns points visited and an implementation-specific
	// work counter (nodes, cells, or candidates touched — the I/O proxy).
	Search(rect Rect, fn func(PV) bool) (visited, work int)
	// Len returns the number of points.
	Len() int
	// Stats reports structure statistics.
	Stats() Stats
}

// KNNIndex is a SpatialIndex that also answers k-nearest-neighbor queries.
type KNNIndex interface {
	SpatialIndex
	// KNN returns the k nearest points to q in ascending distance order.
	KNN(q Point, k int) []PV
}

// MutableSpatialIndex is a SpatialIndex supporting inserts and deletes.
type MutableSpatialIndex interface {
	SpatialIndex
	// Insert adds a point.
	Insert(p Point, v Value) error
	// Delete removes one stored point equal to p with matching value.
	Delete(p Point, v Value) bool
}

// Spatial config re-exports.
type (
	// ZMConfig parameterizes the ZM-index.
	ZMConfig = zm.Config
	// MLIndexConfig parameterizes the ML-Index.
	MLIndexConfig = mlindex.Config
	// FloodConfig parameterizes Flood.
	FloodConfig = flood.Config
	// LISAConfig parameterizes LISA.
	LISAConfig = lisa.Config
	// QdTreeConfig parameterizes the Qd-tree.
	QdTreeConfig = qdtree.Config
	// FloodTuneResult reports Flood's layout tuning outcome.
	FloodTuneResult = flood.TuneResult
)

// ZM curve kinds.
const (
	CurveZ       = zm.CurveZ
	CurveHilbert = zm.CurveHilbert
)

// lookupViaSearch implements exact-point lookup with a degenerate
// rectangle search, for spatial structures without a native point API.
func lookupViaSearch(s interface {
	Search(Rect, func(PV) bool) (int, int)
}, p Point) (Value, bool) {
	var out Value
	found := false
	s.Search(core.RectOf(p), func(pv PV) bool {
		if pv.Point.Equal(p) {
			out, found = pv.Value, true
			return false
		}
		return true
	})
	return out, found
}

// --- R-tree ---------------------------------------------------------------

type rtreeAdapter struct{ *rtree.Tree }

func (a rtreeAdapter) Lookup(p Point) (Value, bool) { return lookupViaSearch(a.Tree, p) }

// NewRTree returns an empty R-tree with the given node capacity (0 selects
// the default).
func NewRTree(maxEntries int) interface {
	MutableSpatialIndex
	KNNIndex
} {
	if maxEntries <= 0 {
		maxEntries = rtree.DefaultMaxEntries
	}
	return rtreeAdapter{rtree.New(maxEntries)}
}

// BulkRTree bulk-loads an R-tree with Sort-Tile-Recursive packing.
func BulkRTree(maxEntries int, pvs []PV) (interface {
	MutableSpatialIndex
	KNNIndex
}, error) {
	if maxEntries <= 0 {
		maxEntries = rtree.DefaultMaxEntries
	}
	t, err := rtree.BulkSTR(maxEntries, pvs)
	if err != nil {
		return nil, err
	}
	return rtreeAdapter{t}, nil
}

// LearnedRTree is the ML-enhanced R-tree (AI+R style).
type LearnedRTree = rtree.Hybrid

// NewLearnedRTree bulk-loads an R-tree and attaches the learned
// leaf-prediction model.
func NewLearnedRTree(maxEntries, cells int, pvs []PV) (*LearnedRTree, error) {
	if maxEntries <= 0 {
		maxEntries = rtree.DefaultMaxEntries
	}
	t, err := rtree.BulkSTR(maxEntries, pvs)
	if err != nil {
		return nil, err
	}
	return rtree.NewHybrid(t, cells)
}

// --- k-d tree ---------------------------------------------------------------

type kdAdapter struct{ *kdtree.Tree }

func (a kdAdapter) Lookup(p Point) (Value, bool) { return lookupViaSearch(a.Tree, p) }

// BulkKDTree builds a balanced k-d tree over the points.
func BulkKDTree(pvs []PV) (KNNIndex, error) {
	t, err := kdtree.Build(pvs)
	if err != nil {
		return nil, err
	}
	return kdAdapter{t}, nil
}

// --- quadtree ----------------------------------------------------------------

type quadAdapter struct{ *quadtree.Tree }

func (a quadAdapter) Lookup(p Point) (Value, bool) { return lookupViaSearch(a.Tree, p) }

// NewQuadtree returns an empty PR quadtree over bounds (2-D only).
func NewQuadtree(bounds Rect, capacity int) (interface {
	MutableSpatialIndex
	KNNIndex
}, error) {
	t, err := quadtree.New(bounds, capacity)
	if err != nil {
		return nil, err
	}
	return quadAdapter{t}, nil
}

// --- uniform grid --------------------------------------------------------------

type gridAdapter struct{ *grid.Grid }

func (a gridAdapter) Lookup(p Point) (Value, bool) { return lookupViaSearch(a.Grid, p) }

// NewUniformGrid returns an empty uniform grid index over bounds.
func NewUniformGrid(bounds Rect, cells int) (interface {
	MutableSpatialIndex
	KNNIndex
}, error) {
	g, err := grid.New(bounds, cells)
	if err != nil {
		return nil, err
	}
	return gridAdapter{g}, nil
}

// --- learned multi-dimensional indexes ------------------------------------------

// NewZMIndex builds a ZM-index (space-filling-curve projection + learned
// 1-D index).
func NewZMIndex(pvs []PV, cfg ZMConfig) (KNNIndex, error) { return zm.Build(pvs, cfg) }

// NewMLIndex builds an ML-Index (reference-point projection + learned 1-D
// index).
func NewMLIndex(pvs []PV, cfg MLIndexConfig) (KNNIndex, error) { return mlindex.Build(pvs, cfg) }

// NewFlood builds a Flood index with an explicit layout.
func NewFlood(pvs []PV, cfg FloodConfig) (SpatialIndex, error) { return flood.Build(pvs, cfg) }

// NewFloodTuned tunes Flood's layout on a sample workload and builds it.
func NewFloodTuned(pvs []PV, queries []Rect, maxCells int) (SpatialIndex, FloodTuneResult, error) {
	ix, res, err := flood.BuildTuned(pvs, queries, maxCells)
	return ix, res, err
}

// lisaAdapter satisfies MutableSpatialIndex and KNNIndex.
type lisaAdapter struct{ *lisa.Index }

// NewLISA builds a LISA index over the points.
func NewLISA(pvs []PV, cfg LISAConfig) (interface {
	MutableSpatialIndex
	KNNIndex
}, error) {
	ix, err := lisa.Build(pvs, cfg)
	if err != nil {
		return nil, err
	}
	return lisaAdapter{ix}, nil
}

// qdAdapter drops the qd-tree's third Search counter.
type qdAdapter struct{ *qdtree.Index }

func (a qdAdapter) Search(rect Rect, fn func(PV) bool) (int, int) {
	visited, _, scanned := a.Index.Search(rect, fn)
	return visited, scanned
}

// QdTree is the workload-driven partition tree; use the concrete type for
// block-level metrics.
type QdTree = qdtree.Index

// NewQdTree builds a Qd-tree over the points for the sample workload.
func NewQdTree(pvs []PV, queries []Rect, cfg QdTreeConfig) (SpatialIndex, error) {
	ix, err := qdtree.Build(pvs, queries, cfg)
	if err != nil {
		return nil, err
	}
	return qdAdapter{ix}, nil
}

// SpatialKinds lists the spatial index names accepted by BuildSpatial.
func SpatialKinds() []string {
	return []string{"rtree", "kdtree", "quadtree", "grid", "zm", "zm-hilbert", "mlindex", "flood", "lisa"}
}

// BuildSpatial builds a spatial index of the named kind over the points.
// Quadtree and grid derive their bounds from the dataset extent convention
// ([0, 2^20) per dimension).
func BuildSpatial(kind string, pvs []PV) (SpatialIndex, error) {
	switch kind {
	case "rtree":
		return BulkRTree(0, pvs)
	case "kdtree":
		return BulkKDTree(pvs)
	case "quadtree":
		q, err := NewQuadtree(worldBounds(2), 0)
		if err != nil {
			return nil, err
		}
		for _, pv := range pvs {
			if err := q.Insert(pv.Point, pv.Value); err != nil {
				return nil, err
			}
		}
		return q, nil
	case "grid":
		dim := 2
		if len(pvs) > 0 {
			dim = pvs[0].Point.Dim()
		}
		// Keep cells^dim bounded as dimensionality grows.
		cells := 32
		switch {
		case dim >= 5:
			cells = 8
		case dim >= 4:
			cells = 12
		case dim == 3:
			cells = 20
		}
		g, err := NewUniformGrid(worldBounds(dim), cells)
		if err != nil {
			return nil, err
		}
		for _, pv := range pvs {
			if err := g.Insert(pv.Point, pv.Value); err != nil {
				return nil, err
			}
		}
		return g, nil
	case "zm":
		return NewZMIndex(pvs, ZMConfig{})
	case "zm-hilbert":
		return NewZMIndex(pvs, ZMConfig{Curve: CurveHilbert})
	case "mlindex":
		return NewMLIndex(pvs, MLIndexConfig{})
	case "flood":
		dim := 2
		if len(pvs) > 0 {
			dim = pvs[0].Point.Dim()
		}
		return NewFlood(pvs, FloodConfig{SortDim: dim - 1})
	case "lisa":
		return NewLISA(pvs, LISAConfig{})
	default:
		return nil, fmt.Errorf("lix: unknown spatial index kind %q", kind)
	}
}

// worldBounds returns the dataset extent convention used by the synthetic
// spatial generators.
func worldBounds(dim int) Rect {
	min := make(Point, dim)
	max := make(Point, dim)
	for d := 0; d < dim; d++ {
		max[d] = 1 << 20
	}
	return Rect{Min: min, Max: max}
}
