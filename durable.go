package lix

import (
	"fmt"
	"strconv"
	"time"

	"github.com/lix-go/lix/internal/core"
	"github.com/lix-go/lix/internal/obs"
	"github.com/lix-go/lix/internal/registry"
	"github.com/lix-go/lix/internal/store"
)

// Durable is a crash-safe index: every mutation is written ahead to a
// segmented log before it is applied in memory, and background
// checkpoints atomically rotate a full snapshot plus fresh log. Open
// recovers the exact committed state after a crash. See DESIGN.md
// §"Durable storage".
type Durable = store.Durable

// DurableRecoveryInfo describes what Open reconstructed.
type DurableRecoveryInfo = store.RecoveryInfo

// SyncPolicy selects when the WAL is fsynced.
type SyncPolicy = store.SyncPolicy

// The fsync policies.
const (
	// FsyncAlways (the default) fsyncs before every mutation returns;
	// concurrent writers share fsyncs through group commit.
	FsyncAlways = store.SyncAlways
	// FsyncInterval fsyncs on a background cadence; a crash may lose the
	// last interval's writes.
	FsyncInterval = store.SyncInterval
	// FsyncNever leaves flushing to the OS; a crash may lose anything
	// since the last checkpoint or explicit Sync.
	FsyncNever = store.SyncNever
)

// ParseSyncPolicy parses "always", "interval" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return store.ParseSyncPolicy(s) }

// Storage engines for DurableOptions.Engine.
const (
	// EngineSnapshot checkpoints by rewriting the full record set into a
	// snapshot file — simple, one file to recover, O(dataset) per
	// checkpoint.
	EngineSnapshot = store.EngineSnapshot
	// EngineLSM checkpoints by flushing only the WAL delta into a new
	// immutable sorted run with a learned fence index and a learned
	// filter; a size-tiered compactor keeps the run count bounded.
	// Checkpoint cost is O(memtable), independent of dataset size.
	EngineLSM = store.EngineLSM
)

// DurableOptions configures Open and NewDurable.
type DurableOptions struct {
	// Kind is the in-memory index kind, one of Mutable1DKinds ("" selects
	// "btree"). With Shards > 0 it is the per-shard backend.
	Kind string
	// Shards, when positive, serves through the sharded concurrent layer
	// with one WAL segment per shard (parallel group commit and parallel
	// recovery). Zero serves through a single index and WAL segment.
	Shards int
	// Fsync selects WAL durability (default FsyncAlways).
	Fsync SyncPolicy
	// SyncInterval is the background flush cadence under FsyncInterval
	// (0 selects the store default).
	SyncInterval time.Duration
	// CheckpointEvery triggers a background checkpoint after this many
	// logged records (0 selects the store default, negative disables).
	CheckpointEvery int
	// Engine selects the checkpoint storage engine, EngineSnapshot or
	// EngineLSM ("" selects EngineSnapshot). On reopen the engine the
	// directory already uses wins; explicitly asking for the other one is
	// a configuration error.
	Engine string
	// Metrics, when set, receives checkpoint/flush/recovery events and
	// fsync latencies.
	Metrics *obs.Metrics
}

// metaKind, metaShards and metaEngine are the snapshot meta keys the
// façade persists so a bare Open(dir, DurableOptions{}) rebuilds the
// stored configuration.
const (
	metaKind   = "kind"
	metaShards = "shards"
	metaEngine = "engine"
)

// Open opens (or, for an empty directory, creates) the durable index at
// dir. On reopen the kind and shard count stored in the newest snapshot
// win; opts fields explicitly set to a different value are a
// configuration error, zero values defer to disk.
func Open(dir string, opts DurableOptions) (*Durable, error) {
	cfg, build, err := durablePlan(opts)
	if err != nil {
		return nil, err
	}
	return store.Open(dir, cfg, build)
}

// NewDurable creates a fresh durable index at dir seeded with recs
// (sorted ascending, distinct keys; may be nil) and checkpoints the seed
// so it is durable immediately. It fails if dir already holds a store.
func NewDurable(dir string, recs []KV, opts DurableOptions) (*Durable, error) {
	cfg, build, err := durablePlan(opts)
	if err != nil {
		return nil, err
	}
	return store.Create(dir, cfg, build, recs)
}

// durablePlan resolves opts into a store config and rebuild function.
func durablePlan(opts DurableOptions) (store.Config, store.BuildFunc, error) {
	kind := opts.Kind
	if kind == "" {
		kind = "btree"
	}
	if _, err := registry.Mutable(kind); err != nil {
		return store.Config{}, nil, err
	}
	if opts.Shards < 0 {
		return store.Config{}, nil, fmt.Errorf("lix: negative shard count %d", opts.Shards)
	}
	engine := opts.Engine
	switch engine {
	case "":
		engine = EngineSnapshot
	case EngineSnapshot, EngineLSM:
	default:
		return store.Config{}, nil, fmt.Errorf("lix: unknown storage engine %q", opts.Engine)
	}
	cfg := store.Config{
		Fsync:           opts.Fsync,
		SyncInterval:    opts.SyncInterval,
		CheckpointEvery: opts.CheckpointEvery,
		Engine:          engine,
		Meta: map[string]string{
			metaKind:   kind,
			metaShards: strconv.Itoa(opts.Shards),
			metaEngine: engine,
		},
		Metrics: opts.Metrics,
	}
	build := func(meta map[string]string, recs []core.KV) (store.BuildResult, error) {
		useKind, useShards := kind, opts.Shards
		if meta != nil {
			// Disk wins; explicitly conflicting options are an error, not a
			// silent reconfiguration.
			diskKind, diskShards, err := parseDurableMeta(meta)
			if err != nil {
				return store.BuildResult{}, err
			}
			if opts.Kind != "" && opts.Kind != diskKind {
				return store.BuildResult{}, fmt.Errorf(
					"lix: store holds kind %q, options ask for %q", diskKind, opts.Kind)
			}
			if opts.Shards != 0 && opts.Shards != diskShards {
				return store.BuildResult{}, fmt.Errorf(
					"lix: store holds %d shards, options ask for %d", diskShards, opts.Shards)
			}
			if diskEngine := meta[metaEngine]; diskEngine != "" && opts.Engine != "" && opts.Engine != diskEngine {
				return store.BuildResult{}, fmt.Errorf(
					"lix: store uses the %s engine, options ask for %s", diskEngine, opts.Engine)
			}
			useKind, useShards = diskKind, diskShards
		}
		if useShards > 0 {
			s, err := NewSharded(recs, ShardedConfig{Shards: useShards, Backend: useKind})
			if err != nil {
				return store.BuildResult{}, err
			}
			r := s.Router()
			return store.BuildResult{
				Index:           s,
				Route:           func(k Key) int { return r.Route(k) },
				Segments:        s.Shards(),
				ConcurrentReads: true,
			}, nil
		}
		ix, err := registry.BuildMutable(useKind, recs)
		if err != nil {
			return store.BuildResult{}, err
		}
		return store.BuildResult{Index: ix, Segments: 1}, nil
	}
	return cfg, build, nil
}

func parseDurableMeta(meta map[string]string) (kind string, shards int, err error) {
	kind = meta[metaKind]
	if kind == "" {
		return "", 0, fmt.Errorf("lix: snapshot meta has no %q entry", metaKind)
	}
	if s := meta[metaShards]; s != "" {
		shards, err = strconv.Atoi(s)
		if err != nil || shards < 0 {
			return "", 0, fmt.Errorf("lix: snapshot meta %q=%q invalid", metaShards, s)
		}
	}
	if _, err := registry.Mutable(kind); err != nil {
		return "", 0, err
	}
	return kind, shards, nil
}
