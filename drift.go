package lix

import "github.com/lix-go/lix/internal/drift"

// Drift detection (paper §6.3): watch a learned index's per-operation
// correction cost and decide when to retrain.
type (
	// DriftEWMA flags drift when the smoothed cost exceeds a ratio of the
	// post-training baseline.
	DriftEWMA = drift.EWMA
	// DriftPageHinkley is the Page–Hinkley sequential change detector:
	// robust to isolated spikes, reacts to sustained shifts.
	DriftPageHinkley = drift.PageHinkley
)

// NewDriftEWMA returns an EWMA drift detector; see drift.NewEWMA.
func NewDriftEWMA(baseline, threshold, alpha float64) (*DriftEWMA, error) {
	return drift.NewEWMA(baseline, threshold, alpha)
}

// NewDriftPageHinkley returns a Page–Hinkley drift detector; see
// drift.NewPageHinkley.
func NewDriftPageHinkley(delta, lambda float64) (*DriftPageHinkley, error) {
	return drift.NewPageHinkley(delta, lambda)
}
